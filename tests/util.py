"""Shared helpers for the test suite: tiny programs with known behaviour."""

from __future__ import annotations

from repro.isa import Mem, Op
from repro.machine import Machine
from repro.program import ProgramBuilder
from repro.tracer import TraceRecorder


def run_traced(program, spawns, roots, setup=None, exclude=(), **mkw):
    """Run ``program`` under the tracer; returns (traces, machine)."""
    recorder = TraceRecorder(roots=roots, exclude=exclude, workload="test",
                             program=program)
    machine = Machine(program, hooks=recorder, **mkw)
    if setup:
        setup(machine)
    for name, args, io_in in spawns:
        machine.spawn(name, args, io_in=io_in)
    machine.run()
    return recorder.traces, machine


def build_diamond_program():
    """worker(tid): if tid odd -> add path, else -> mul path; then join."""
    b = ProgramBuilder()
    with b.function("worker", args=["tid"]) as f:
        acc = f.reg()
        t = f.reg()
        f.mov(acc, 10)
        f.mod(t, f.a(0), 2)
        f.if_else(
            t, "==", 1,
            lambda: f.add(acc, acc, 5),
            lambda: f.mul(acc, acc, 2),
        )
        f.add(acc, acc, 1)
        f.ret(acc)
    return b.build()


def build_loop_program():
    """worker(n): loop n times accumulating i."""
    b = ProgramBuilder()
    with b.function("worker", args=["n"]) as f:
        acc = f.reg()
        i = f.reg()
        f.mov(acc, 0)
        f.for_range(i, 0, f.a(0), lambda: f.add(acc, acc, i))
        f.ret(acc)
    return b.build()


def build_call_program():
    """worker(tid) calls square(tid) and doubles the result."""
    b = ProgramBuilder()
    with b.function("square", args=["x"]) as f:
        r = f.reg()
        f.mul(r, f.a(0), f.a(0))
        f.ret(r)
    with b.function("worker", args=["tid"]) as f:
        s = f.reg()
        f.call(s, "square", [f.a(0)])
        f.add(s, s, s)
        f.ret(s)
    return b.build()


def build_lock_program(shared_lock=True):
    """Workers increment a counter under a lock.

    ``shared_lock=True`` makes every thread use the same lock (contended);
    otherwise each thread locks its own lock word (fine-grained).
    """
    b = ProgramBuilder()
    lock_area = b.data("locks", 8 * 64)
    counter = b.data("counter", 8 * 64)
    with b.function("worker", args=["tid"]) as f:
        laddr = f.reg()
        caddr = f.reg()
        v = f.reg()
        if shared_lock:
            f.mov(laddr, lock_area.value)
        else:
            f.mul(laddr, f.a(0), 8)
            f.add(laddr, laddr, lock_area.value)
        f.mul(caddr, f.a(0), 0 if shared_lock else 8)
        f.add(caddr, caddr, counter.value)
        f.lock(laddr)
        f.load(v, Mem(caddr))
        f.add(v, v, 1)
        f.store(Mem(caddr), v)
        f.unlock(laddr)
        f.ret(v)
    return b.build(), lock_area.value, counter.value
