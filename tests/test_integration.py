"""End-to-end integration tests: complete pipelines, cross-subsystem.

Fast versions of what the benchmark harness does at scale, pinned with
hard assertions so regressions surface in `pytest tests/`.
"""

import pytest

from repro.core import AnalyzerConfig, ThreadFuserAnalyzer, analyze_traces
from repro.gpuref import LockstepGPU
from repro.optlevels import OPT_LEVELS, apply_opt_level
from repro.simulator import GPUSimulator, project_speedup, rtx3070
from repro.tracegen import (
    generate_kernel_trace,
    generate_oracle_kernel_trace,
)
from repro.workloads import get_workload, trace_instance

N = 32


class TestFullDeveloperFlow:
    """Trace -> analyze -> pinpoint -> fix -> re-project (Fig. 7 flow)."""

    def test_hdsearch_story_end_to_end(self):
        stock_w = get_workload("hdsearch_mid")
        fixed_w = get_workload("hdsearch_mid_fixed")
        stock = stock_w.instantiate(N)
        fixed = fixed_w.instantiate(N)
        stock_traces, _m1 = trace_instance(stock)
        fixed_traces, _m2 = trace_instance(fixed)

        stock_report = analyze_traces(stock_traces, warp_size=16)
        fixed_report = analyze_traces(fixed_traces, warp_size=16)

        # 1. the bottleneck function is identified
        top = stock_report.per_function()[0]
        assert top.name == "getpoint"
        # 2. hotspots point inside getpoint
        hotspots = stock_report.divergence_hotspots(
            program=stock.program)
        assert hotspots[0][0] == "getpoint"
        # 3. fix recovers efficiency
        assert fixed_report.simt_efficiency > 3 * stock_report.simt_efficiency
        # 4. and the projected speedup improves
        s1 = project_speedup(stock_traces, stock.program,
                             launch_threads=512)
        s2 = project_speedup(fixed_traces, fixed.program,
                             launch_threads=512)
        assert s2.speedup > s1.speedup


class TestFullCorrelationFlow:
    """CPU binaries at 4 opt levels vs the SIMT oracle (Fig. 5 flow)."""

    def test_btree_correlates_at_every_level(self):
        workload = get_workload("btree")
        instance = workload.instantiate(N)
        oracle = LockstepGPU(instance.gpu.program, warp_size=16)
        instance.gpu.setup(oracle)
        measured = oracle.run_kernel(
            instance.gpu.kernel, instance.gpu.args_per_thread
        )
        for level in OPT_LEVELS:
            program = apply_opt_level(instance.program, level)
            traces, _m = trace_instance(instance, program=program)
            predicted = analyze_traces(traces, warp_size=16)
            assert predicted.simt_efficiency == pytest.approx(
                measured.simt_efficiency, abs=0.08
            ), level


class TestFullArchitectFlow:
    """MIMD traces -> warp traces -> simulator (Fig. 6 flow)."""

    def test_threadfuser_and_nvbit_traces_agree_on_shared_kernel(self):
        workload = get_workload("streamcluster")
        instance = workload.instantiate(N)
        traces, _m = trace_instance(instance)
        tf_kernel = generate_kernel_trace(traces, instance.program,
                                          warp_size=16)
        cu_kernel = generate_oracle_kernel_trace(
            instance.gpu.program, instance.gpu.kernel,
            instance.gpu.args_per_thread, instance.gpu.setup,
            warp_size=16,
        )
        # Identical implementations => identical warp streams.
        assert tf_kernel.total_issues == cu_kernel.total_issues
        assert (tf_kernel.total_thread_instructions
                == cu_kernel.total_thread_instructions)
        a = GPUSimulator(rtx3070()).run(tf_kernel)
        b = GPUSimulator(rtx3070()).run(cu_kernel)
        assert a.cycles == b.cycles

    def test_efficiency_is_monotone_in_warp_size_via_shared_dcfgs(self):
        workload = get_workload("dsb_text")
        instance = workload.instantiate(N)
        traces, _m = trace_instance(instance)
        analyzer = ThreadFuserAnalyzer()
        dcfgs = analyzer.prepare(traces)
        effs = []
        for warp_size in (2, 4, 8, 16, 32):
            analyzer.config = AnalyzerConfig(warp_size=warp_size)
            effs.append(
                analyzer.analyze(traces, dcfgs=dcfgs).simt_efficiency
            )
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_speedup_scales_with_launch_size(self):
        workload = get_workload("nn")
        instance = workload.instantiate(N)
        traces, _m = trace_instance(instance)
        small = project_speedup(traces, instance.program,
                                launch_threads=N)
        large = project_speedup(traces, instance.program,
                                launch_threads=N * 64)
        assert large.speedup > small.speedup


class TestTraceFileRoundtripFlow:
    def test_saved_traces_analyze_identically(self, tmp_path):
        from repro.tracer import load_traces, save_traces

        workload = get_workload("memcached")
        instance = workload.instantiate(N)
        traces, _m = trace_instance(instance)
        path = str(tmp_path / "mc.jsonl")
        save_traces(traces, path)
        loaded = load_traces(path, program=instance.program)
        a = analyze_traces(traces, warp_size=16, emulate_locks=True)
        b = analyze_traces(loaded, warp_size=16, emulate_locks=True)
        assert a.simt_efficiency == b.simt_efficiency
        assert a.heap_transactions == b.heap_transactions
        assert a.metrics.locks.serialized_issues == (
            b.metrics.locks.serialized_issues
        )
