"""Unit tests for DCFG construction and IPDOM analysis."""

import pytest

from repro.core import (
    VEXIT,
    build_dcfgs,
    compute_all_ipdoms,
    compute_ipdoms,
    compute_postdominators,
)
from repro.core.dcfg import FunctionDCFG
from repro.program import ProgramBuilder

from util import (
    build_call_program,
    build_diamond_program,
    build_loop_program,
    run_traced,
)


def _label_of(program, addr):
    return program.block_by_addr[addr].label if addr != VEXIT else "VEXIT"


class TestDCFGConstruction:
    def test_diamond_shape(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(2)], ["worker"]
        )
        dcfgs = build_dcfgs(traces)
        dcfg = dcfgs["worker"]
        entry = program.functions["worker"].entry.addr
        assert entry in dcfg.entries
        # Both diverged paths observed -> entry has two successors.
        assert len(dcfg.succs[entry]) == 2

    def test_single_thread_sees_one_path(self):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [0], None)], ["worker"])
        dcfg = build_dcfgs(traces)["worker"]
        entry = program.functions["worker"].entry.addr
        assert len(dcfg.succs[entry]) == 1

    def test_every_trace_ends_at_vexit(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        dcfg = build_dcfgs(traces)["worker"]
        assert dcfg.preds[VEXIT], "no edge into the virtual exit"

    def test_per_function_graphs_are_separate(self):
        program = build_call_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(2)], ["worker"]
        )
        dcfgs = build_dcfgs(traces)
        assert "worker" in dcfgs
        assert "square" in dcfgs
        worker_nodes = set(dcfgs["worker"].succs) - {VEXIT}
        square_nodes = set(dcfgs["square"].succs) - {VEXIT}
        assert not worker_nodes & square_nodes

    def test_loop_back_edge_present(self):
        program = build_loop_program()
        traces, _m = run_traced(program, [("worker", [3], None)], ["worker"])
        dcfg = build_dcfgs(traces)["worker"]
        # A loop implies a cycle: some node reaches itself.
        def reaches(src, dst, seen=None):
            seen = seen or set()
            for nxt in dcfg.succs.get(src, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    if reaches(nxt, dst, seen):
                        return True
            return False

        assert any(reaches(n, n) for n in dcfg.succs if n != VEXIT)


class TestIpdom:
    def _hand_built(self, edges, entry=0):
        dcfg = FunctionDCFG("f")
        for src, dst in edges:
            dcfg.add_edge(src, dst)
        dcfg.entries.add(entry)
        return dcfg

    def test_diamond_ipdom_is_join(self):
        #   1 -> 2 -> 4, 1 -> 3 -> 4, 4 -> VEXIT
        dcfg = self._hand_built(
            [(1, 2), (1, 3), (2, 4), (3, 4), (4, VEXIT)], entry=1
        )
        ipdom = compute_ipdoms(dcfg)
        assert ipdom[1] == 4
        assert ipdom[2] == 4
        assert ipdom[3] == 4
        assert ipdom[4] == VEXIT

    def test_early_return_reconverges_at_vexit(self):
        # 1 -> 2 -> VEXIT (early return), 1 -> 3 -> 4 -> VEXIT
        dcfg = self._hand_built(
            [(1, 2), (2, VEXIT), (1, 3), (3, 4), (4, VEXIT)], entry=1
        )
        ipdom = compute_ipdoms(dcfg)
        assert ipdom[1] == VEXIT

    def test_loop_exit_is_ipdom_of_latch(self):
        # header 1 -> body 2 -> 1 (back edge); 1 -> exit 3 -> VEXIT
        dcfg = self._hand_built(
            [(1, 2), (2, 1), (1, 3), (3, VEXIT)], entry=1
        )
        ipdom = compute_ipdoms(dcfg)
        assert ipdom[1] == 3
        assert ipdom[2] == 1

    def test_nested_diamonds(self):
        # outer: 1 -> {2, 7}; inner within 2: 2 -> {3,4} -> 5; 5 -> 6;
        # 7 -> 6; 6 -> VEXIT
        dcfg = self._hand_built(
            [(1, 2), (1, 7), (2, 3), (2, 4), (3, 5), (4, 5), (5, 6),
             (7, 6), (6, VEXIT)], entry=1
        )
        ipdom = compute_ipdoms(dcfg)
        assert ipdom[2] == 5
        assert ipdom[1] == 6

    def test_chain_ipdoms(self):
        dcfg = self._hand_built([(1, 2), (2, 3), (3, VEXIT)], entry=1)
        ipdom = compute_ipdoms(dcfg)
        assert ipdom[1] == 2
        assert ipdom[2] == 3
        assert ipdom[3] == VEXIT

    def test_postdominator_sets_contain_self_and_exit(self):
        dcfg = self._hand_built(
            [(1, 2), (1, 3), (2, 4), (3, 4), (4, VEXIT)], entry=1
        )
        pdoms = compute_postdominators(dcfg)
        for node, members in pdoms.items():
            assert node in members
            assert VEXIT in members

    def test_postdominator_chain_property(self):
        """pdom sets along any node's chain are nested (total order)."""
        dcfg = self._hand_built(
            [(1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (5, VEXIT), (2, 5)],
            entry=1,
        )
        pdoms = compute_postdominators(dcfg)
        for node, members in pdoms.items():
            sets = sorted(
                (frozenset(pdoms[m]) for m in members), key=len
            )
            for smaller, larger in zip(sets, sets[1:]):
                assert smaller <= larger

    def test_ipdom_from_real_traces(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(2)], ["worker"]
        )
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        dcfg = dcfgs["worker"]
        entry = program.functions["worker"].entry.addr
        join = dcfg.ipdom[entry]
        # The reconvergence point of the diamond must be a real block (the
        # join), not the virtual exit.
        assert join != VEXIT
        # and it must post-dominate: both successors' ipdom chains hit it.
        for succ in dcfg.succs[entry]:
            node = succ
            seen = set()
            while node != VEXIT and node not in seen:
                seen.add(node)
                if node == join:
                    break
                node = dcfg.ipdom[node]
            assert node == join
