"""The horizontal serve layer (``repro.shards``): the ISSUE 10 contracts.

* **Parity** -- a sweep served by N shard processes produces exactly
  the reports of the in-process path: identical HTTP report documents
  and bit-identical stored report payloads, cold and warm, for shards
  in {1, 2, 4}.
* **Cross-shard coalescing** -- a burst of identical submits triggers
  exactly one machine execution even when the duplicates land while
  the computation is owned by another shard (coalescing is
  parent-side, so the shard count cannot break it).
* **Streamed partials** -- a sweep's per-width reports arrive over
  the NDJSON events channel in completion order, contiguous and
  complete, every partial before the terminal snapshot.
* **Fault hardening** -- a ``serve.shard`` kill mid-cell is absorbed
  by respawn-and-rerun with bit-identical results; a cell killed on
  every attempt surfaces as a typed error, never a hang.

All sharded servers run over real HTTP via
:func:`repro.serve.start_in_background` with ``shards=N``.
"""

import http.client
import json
import threading
import time

import pytest

from repro import faults
from repro.artifacts import KIND_REPORT, ArtifactStore
from repro.serve import start_in_background
from repro.shards import (
    MAX_CELL_ATTEMPTS,
    ShardCrashError,
    ShardPool,
    probe_shards,
)

WORKLOAD = "vectoradd"
N_THREADS = 8
WIDTHS = [8, 16]
SWEEP = {"workload": WORKLOAD, "n_threads": N_THREADS,
         "warp_sizes": WIDTHS}

from test_serve import _get, _post, _wait  # noqa: E402


def _stream_lines(url, job_id, timeout=60.0):
    """Read the full NDJSON events stream of one job."""
    host, port = url.rsplit("//", 1)[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    conn.request("GET", f"/v1/jobs/{job_id}/events")
    response = conn.getresponse()
    assert response.status == 200
    lines = [json.loads(line)
             for line in response.read().decode().splitlines()]
    conn.close()
    return lines


def _report_bytes(cache_dir):
    """``{key: payload}`` of every stored report artifact."""
    store = ArtifactStore(cache_dir)
    return {
        entry.key: store.read_key(KIND_REPORT, entry.key,
                                  count_stats=False)
        for entry in store.entries()
        if entry.kind == KIND_REPORT
    }


class TestShardParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sweep_matches_the_inline_path_cold_and_warm(
            self, shards, tmp_path):
        inline_cache = str(tmp_path / "inline")
        handle = start_in_background(cache_dir=inline_cache)
        try:
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            _wait(handle.url, doc["job_id"])
            _status, baseline = _get(
                handle.url, f"/v1/jobs/{doc['job_id']}/report")
        finally:
            handle.close()

        shard_cache = str(tmp_path / f"shards{shards}")
        handle = start_in_background(cache_dir=shard_cache,
                                     shards=shards)
        try:
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            cold = _wait(handle.url, doc["job_id"])
            assert cold["status"] == "done"
            _status, report = _get(
                handle.url, f"/v1/jobs/{doc['job_id']}/report")
            assert report["reports"] == baseline["reports"]

            # Warm resubmit: answered from the registry, no new work.
            _status, health = _get(handle.url, "/v1/health")
            executions = health["executions"]
            status, again = _post(handle.url, "/v1/sweep", SWEEP)
            assert status == 200 and again["status"] == "done"
            assert again["job_id"] == doc["job_id"]
            _status, health = _get(handle.url, "/v1/health")
            assert health["executions"] == executions
        finally:
            handle.close()

        # The stored artifacts agree bit for bit with the inline run.
        baseline_reports = _report_bytes(inline_cache)
        sharded_reports = _report_bytes(shard_cache)
        assert set(sharded_reports) == set(baseline_reports)
        for key, payload in baseline_reports.items():
            assert sharded_reports[key] == payload, (
                f"report {key[:12]}.. differs under shards={shards}")


class TestCrossShardCoalescing:
    def test_burst_of_identical_submits_runs_one_analysis(
            self, tmp_path):
        handle = start_in_background(
            cache_dir=str(tmp_path / "cache"), shards=2)
        clients = 8
        spec = {"workload": WORKLOAD, "n_threads": N_THREADS,
                "seed": 99}
        try:
            _status, before = _get(handle.url, "/v1/health")
            results = [None] * clients
            barrier = threading.Barrier(clients)

            def submit(slot):
                barrier.wait()
                results[slot] = _post(handle.url, "/v1/analyze", spec)

            threads = [threading.Thread(target=submit, args=(slot,))
                       for slot in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            job_ids = {doc["job_id"] for _status, doc in results}
            assert len(job_ids) == 1
            done = _wait(handle.url, job_ids.pop())
            assert done["status"] == "done"
            _status, after = _get(handle.url, "/v1/health")
            assert after["executions"] - before["executions"] == 1
            # Every duplicate either coalesced onto the in-flight
            # fingerprint or landed registry-warm just after it
            # finished; none of them ran anything.
            absorbed = sum(
                1 for _status, doc in results
                if doc.get("coalesced") or doc.get("warm"))
            assert absorbed == clients - 1
        finally:
            handle.close()

    def test_health_reports_per_shard_detail(self, tmp_path):
        handle = start_in_background(
            cache_dir=str(tmp_path / "cache"), shards=2)
        try:
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            _wait(handle.url, doc["job_id"])
            _status, health = _get(handle.url, "/v1/health")
            shards_doc = health["shards"]
            assert shards_doc["count"] == 2
            assert shards_doc["mode"] == "process"
            assert len(shards_doc["detail"]) == 2
            for row in shards_doc["detail"]:
                assert row["alive"] is True
                for key in ("pid", "queue", "in_flight_fingerprints",
                            "coalesce_hits", "vector_backend",
                            "cells_done", "respawns"):
                    assert key in row, row
            assert sum(row["cells_done"]
                       for row in shards_doc["detail"]) == len(WIDTHS)
        finally:
            handle.close()

    def test_inline_server_reports_zero_shards(self, tmp_path):
        handle = start_in_background(cache_dir=str(tmp_path / "cache"))
        try:
            _status, health = _get(handle.url, "/v1/health")
            assert health["shards"] == {"count": 0, "mode": "inline",
                                        "detail": []}
            assert health["executions"] == \
                health["session"]["executions"]
        finally:
            handle.close()


class TestStreamedPartials:
    def test_partials_are_contiguous_complete_and_precede_done(
            self, tmp_path):
        handle = start_in_background(
            cache_dir=str(tmp_path / "cache"), shards=2)
        try:
            _status, doc = _post(handle.url, "/v1/sweep",
                                 dict(SWEEP, warp_sizes=[4, 8, 16]))
            lines = _stream_lines(handle.url, doc["job_id"])
        finally:
            handle.close()
        partials = [line for line in lines
                    if line.get("event") == "partial"]
        snapshots = [line for line in lines if "status" in line]
        assert [p["seq"] for p in partials] == [0, 1, 2]
        assert {p["width"] for p in partials} == {4, 8, 16}
        for partial in partials:
            assert partial["job_id"] == doc["job_id"]
            assert partial["report"]["workload"] == WORKLOAD
            assert partial["report"]["warp_size"] == partial["width"]
            assert partial["shard"] in (0, 1)
        assert snapshots[-1]["status"] == "done"
        assert snapshots[-1]["cells"] == {"done": 3, "total": 3}
        # Every partial line precedes the terminal snapshot line.
        assert lines.index(snapshots[-1]) > max(
            lines.index(p) for p in partials)


class TestShardFaults:
    def teardown_method(self):
        faults.reset()

    def test_kill_mid_cell_respawns_and_matches_bit_identical(
            self, tmp_path):
        baseline_cache = str(tmp_path / "baseline")
        handle = start_in_background(cache_dir=baseline_cache)
        try:
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            _wait(handle.url, doc["job_id"])
            _status, baseline = _get(
                handle.url, f"/v1/jobs/{doc['job_id']}/report")
        finally:
            handle.close()

        faulted_cache = str(tmp_path / "faulted")
        handle = start_in_background(cache_dir=faulted_cache, shards=2)
        try:
            # Kill the first attempt of every width: the dispatcher
            # must respawn each shard and re-run the cell (attempt
            # tokens are salted, so the retry is not re-killed).
            faults.install(faults.FaultPlan([
                faults.FaultSpec(site="serve.shard", kind="kill",
                                 match=f"{WORKLOAD}:w{width}#1")
                for width in WIDTHS
            ]))
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            done = _wait(handle.url, doc["job_id"])
            assert done["status"] == "done"
            _status, report = _get(
                handle.url, f"/v1/jobs/{doc['job_id']}/report")
            assert report["reports"] == baseline["reports"]
            _status, health = _get(handle.url, "/v1/health")
            respawns = sum(row["respawns"]
                           for row in health["shards"]["detail"])
            assert respawns >= len(WIDTHS)
        finally:
            faults.reset()
            handle.close()

        faulted_reports = _report_bytes(faulted_cache)
        for key, payload in _report_bytes(baseline_cache).items():
            assert faulted_reports[key] == payload

    def test_kill_on_every_attempt_is_a_typed_error_not_a_hang(
            self, tmp_path):
        handle = start_in_background(
            cache_dir=str(tmp_path / "cache"), shards=2)
        try:
            faults.install(faults.FaultPlan([
                faults.FaultSpec(site="serve.shard", kind="kill",
                                 match=f"{WORKLOAD}:w8#{attempt}")
                for attempt in range(1, MAX_CELL_ATTEMPTS + 1)
            ]))
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            failed = _wait(handle.url, doc["job_id"], timeout=120.0)
            assert failed["status"] == "failed"
            assert failed["error"]["type"] == "ShardCrashError"
            assert failed["error"]["site"] == "serve.shard"
            assert failed["error"]["hint"]
            status, body = _get(handle.url,
                                f"/v1/jobs/{doc['job_id']}/report")
            assert status == 500
            assert body["error"]["site"] == "serve.shard"
        finally:
            faults.reset()
            handle.close()

    def test_server_recovers_after_the_fault_storm(self, tmp_path):
        handle = start_in_background(
            cache_dir=str(tmp_path / "cache"), shards=2)
        try:
            faults.install(faults.FaultPlan([
                faults.FaultSpec(site="serve.shard", kind="kill",
                                 match=f"{WORKLOAD}:w8#{attempt}")
                for attempt in range(1, MAX_CELL_ATTEMPTS + 1)
            ]))
            _status, doc = _post(handle.url, "/v1/sweep", SWEEP)
            assert _wait(handle.url, doc["job_id"],
                         timeout=120.0)["status"] == "failed"
            faults.reset()
            # The shards were respawned; the same sweep now succeeds
            # (a failed job is replaced, never served again).
            _status, retry = _post(handle.url, "/v1/sweep", SWEEP)
            done = _wait(handle.url, retry["job_id"])
            assert done["status"] == "done"
            assert retry["job_id"] != doc["job_id"] or \
                done["status"] == "done"
        finally:
            faults.reset()
            handle.close()


class TestShardPoolDirect:
    def test_worker_raised_errors_propagate_without_respawn(
            self, tmp_path):
        pool = ShardPool(1, {"cache_dir": str(tmp_path / "cache")})
        pool.start()
        try:
            done = threading.Event()
            out = {}

            def complete(payload, exc, shard, skipped):
                out.update(payload=payload, exc=exc)
                done.set()

            pool.submit({"workload": "no-such-workload",
                         "n_threads": 4, "seed": 0,
                         "opt_level": "O1", "warp_size": 8,
                         "batching": "linear", "emulate_locks": False,
                         "lock_reconvergence": "unlock",
                         "token": "no-such:w8"},
                        on_complete=complete)
            assert done.wait(60.0)
            assert out["payload"] is None
            assert isinstance(out["exc"], Exception)
            assert not isinstance(out["exc"], ShardCrashError)
            # A bug is not a crash: the worker survived it.
            assert pool.health()[0]["respawns"] == 0
            assert pool.health()[0]["alive"] is True
        finally:
            pool.close()

    def test_skipped_cells_report_skipped(self, tmp_path):
        pool = ShardPool(1, {"cache_dir": str(tmp_path / "cache")})
        pool.start()
        try:
            done = threading.Event()
            out = {}

            def complete(payload, exc, shard, skipped):
                out.update(skipped=skipped, payload=payload)
                done.set()

            pool.submit({"workload": WORKLOAD, "n_threads": 4,
                         "seed": 0, "opt_level": "O1", "warp_size": 8,
                         "batching": "linear", "emulate_locks": False,
                         "lock_reconvergence": "unlock",
                         "token": "skip:w8"},
                        should_run=lambda: False,
                        on_complete=complete)
            assert done.wait(60.0)
            assert out["skipped"] is True
            assert out["payload"] is None
        finally:
            pool.close()


class TestProbe:
    def test_probe_shards_reports_live_workers(self, tmp_path):
        probe = probe_shards(count=2,
                             cache_dir=str(tmp_path / "cache"))
        assert probe["shards"] == 2
        assert probe["spawn_s"] >= 0.0
        assert len(probe["detail"]) == 2
        for row in probe["detail"]:
            assert row["alive"] is True
            assert row["ping"]["pid"] == row["pid"]

    def test_pool_info_cli_prints_the_shard_probe(self, capsys):
        from repro.cli import main

        assert main(["pool", "info", "--no-probe", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "shards:         2 probed" in out
        assert "shard 0: pid " in out
        assert "shard 1: pid " in out
        assert out.count("alive") >= 2
