"""Golden parity: the compiled engine is bit-identical to the interpreter.

The link-time compiled engine (:mod:`repro.machine.compiled`) must be an
*observationally invisible* optimization: for every workload family in
the catalog it has to produce exactly the same traces, metrics and
telemetry counters as the seed instruction-at-a-time interpreter, under
both serial and parallel replay.  This is the contract that lets the
artifact store share cache entries across engines (the engine is
excluded from trace fingerprints) and lets the whole test suite double
as compiled-engine coverage.

Compared per workload, engine pair, and ``jobs`` in (1, 2):

* every logical thread's token stream and skip counters;
* the trace set's untraced/skipped totals;
* the full :class:`AggregateMetrics` counter signature of the report;
* the telemetry **counters** (gauges are excluded by design -- they
  describe *how* a run executed, e.g. ``engine.compiled``, and are the
  one place the engines may differ).
"""

import pytest

from repro.obs import Recorder
from repro.session import AnalysisSession

#: One representative workload per catalog family (suite column of the
#: paper's Table 1): Micro, Rodinia 3.1, ParSec 3.0, DeathStarBench,
#: uSuite, Paropoly, Others.
FAMILY_WORKLOADS = [
    "vectoradd",       # Micro Benchmark
    "streamcluster",   # Rodinia 3.1
    "blackscholes",    # ParSec 3.0
    "dsb_uniqueid",    # DeathStarBench
    "memcached",       # uSuite
    "nbody",           # Paropoly
    "md5",             # Others
]

N_THREADS = 48
SEED = 7


def _metrics_signature(m):
    """Every counter of an AggregateMetrics as one comparable value."""
    return (
        m.warp_size,
        m.n_warps,
        m.n_threads,
        m.issues,
        m.thread_instructions,
        tuple(m.warp_efficiencies),
        m.stack_depth_hwm,
        m.reconvergence_events,
        tuple(sorted(
            (name, s.issues, s.thread_instructions, s.calls)
            for name, s in m.per_function.items()
        )),
        tuple(sorted(
            (name, seg.instructions, seg.accesses, seg.transactions)
            for name, seg in m.memory.items()
        )),
        (m.locks.lock_events, m.locks.contended_events,
         m.locks.serialized_threads, m.locks.serialized_issues,
         m.locks.serialized_entries),
        tuple(sorted(m.divergence_events.items())),
    )


def _run(workload, engine, jobs):
    """Trace + analyze one workload; return all observables."""
    session = AnalysisSession(cache_dir=None, jobs=jobs,
                              recorder=Recorder(), engine=engine)
    traces = session.trace(workload, n_threads=N_THREADS, seed=SEED)
    report = session.analyze(workload, n_threads=N_THREADS, seed=SEED)
    tokens = [t.tokens for t in traces.threads]
    skipped = [dict(t.skipped) for t in traces.threads]
    counters = dict(session.telemetry().counters)
    return {
        "tokens": tokens,
        "skipped": skipped,
        "untraced_skipped": traces.untraced_skipped,
        "total_instructions": traces.total_instructions,
        "metrics": _metrics_signature(report.metrics),
        "skipped_by_reason": dict(report.skipped_by_reason),
        "counters": counters,
    }


@pytest.mark.parametrize("workload", FAMILY_WORKLOADS)
@pytest.mark.parametrize("jobs", [1, 2])
def test_compiled_engine_matches_interpreter(workload, jobs):
    interp = _run(workload, "interp", jobs)
    compiled = _run(workload, "compiled", jobs)

    assert compiled["tokens"] == interp["tokens"]
    assert compiled["skipped"] == interp["skipped"]
    assert compiled["untraced_skipped"] == interp["untraced_skipped"]
    assert compiled["total_instructions"] == interp["total_instructions"]
    assert compiled["metrics"] == interp["metrics"]
    assert compiled["skipped_by_reason"] == interp["skipped_by_reason"]
    assert compiled["counters"] == interp["counters"]


def test_engine_gauges_reflect_engine():
    """The engine gauges are the only telemetry difference by design."""
    s_compiled = AnalysisSession(recorder=Recorder(), engine="compiled")
    s_interp = AnalysisSession(recorder=Recorder(), engine="interp")
    s_compiled.trace("vectoradd", n_threads=8, seed=SEED)
    s_interp.trace("vectoradd", n_threads=8, seed=SEED)
    g_compiled = s_compiled.telemetry().gauges
    g_interp = s_interp.telemetry().gauges
    assert g_compiled["engine.compiled"] == 1
    assert g_compiled["engine.compiled_blocks"] > 0
    assert g_compiled["engine.compiled_handlers"] > 0
    assert g_interp["engine.compiled"] == 0
    assert g_interp["engine.compiled_blocks"] == 0


def test_engine_excluded_from_trace_fingerprint():
    """Bit-identical engines share one artifact-cache entry."""
    session = AnalysisSession()
    a = session.trace_fields("vectoradd", 8, SEED,
                             machine_overrides={"engine": "interp"})
    b = session.trace_fields("vectoradd", 8, SEED,
                             machine_overrides={"engine": "compiled"})
    assert a == b
