"""Unit tests for the MIMD machine: semantics, ABI, sync, I/O, scheduling."""

import pytest

from repro.isa import Imm, Mem, Op, Reg
from repro.machine import (
    DeadlockError,
    InstructionLimitError,
    Machine,
    MachineError,
    Memory,
    SEG_HEAP,
    SEG_STACK,
    STACK_BASE,
    segment_of,
    stack_top,
)
from repro.program import ProgramBuilder

from util import build_call_program, build_lock_program


def _run1(program, fn, args, **kw):
    m = Machine(program, **kw)
    m.spawn(fn, args)
    m.run()
    return m.threads[0].retval


class TestMemoryModel:
    def test_load_of_untouched_memory_is_zero(self):
        mem = Memory()
        assert mem.load(0x1234_0000) == 0

    def test_store_load_roundtrip(self):
        mem = Memory()
        mem.store(0x1000_0000, 42)
        assert mem.load(0x1000_0000) == 42

    def test_negative_address_rejected(self):
        mem = Memory()
        with pytest.raises(MachineError):
            mem.load(-8)
        with pytest.raises(MachineError):
            mem.store(-8, 1)

    def test_bulk_write_read(self):
        mem = Memory()
        mem.write_words(0x1000_0000, [1, 2, 3])
        assert mem.read_words(0x1000_0000, 3) == [1, 2, 3]

    def test_segment_classification(self):
        assert segment_of(0x1000_0000) == SEG_HEAP
        assert segment_of(STACK_BASE) == SEG_STACK
        assert segment_of(stack_top(0) - 8) == SEG_STACK

    def test_stack_tops_disjoint_per_thread(self):
        assert stack_top(0) != stack_top(1)
        assert stack_top(1) - stack_top(0) == stack_top(2) - stack_top(1)


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        (Op.ADD, 3, 4, 7),
        (Op.SUB, 3, 4, -1),
        (Op.IMUL, 3, 4, 12),
        (Op.IDIV, 7, 2, 3),
        (Op.IDIV, -7, 2, -3),     # C-style truncation toward zero
        (Op.IMOD, 7, 3, 1),
        (Op.IMOD, -7, 3, -1),     # C-style remainder sign
        (Op.AND, 0b1100, 0b1010, 0b1000),
        (Op.OR, 0b1100, 0b1010, 0b1110),
        (Op.XOR, 0b1100, 0b1010, 0b0110),
        (Op.SHL, 1, 4, 16),
        (Op.SHR, 16, 2, 4),
        (Op.IMIN, 3, 4, 3),
        (Op.IMAX, 3, 4, 4),
    ])
    def test_integer_ops(self, op, a, b, expected):
        b_ = ProgramBuilder()
        with b_.function("f", args=["x", "y"]) as f:
            r = f.reg()
            f.emit(op, r, f.a(0), f.a(1))
            f.ret(r)
        assert _run1(b_.build(), "f", [a, b]) == expected

    def test_division_by_zero_raises(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            r = f.reg()
            f.div(r, f.a(0), 0)
            f.ret(r)
        with pytest.raises(MachineError):
            _run1(b.build(), "f", [1])

    def test_float_ops(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            r = f.reg()
            f.emit(Op.CVTIF, r, f.a(0))
            f.emit(Op.FMUL, r, r, 2.5)
            f.emit(Op.FADD, r, r, 0.5)
            f.emit(Op.CVTFI, r, r)
            f.ret(r)
        assert _run1(b.build(), "f", [4]) == 10  # 4*2.5+0.5 = 10.5 -> 10

    def test_fsqrt_of_negative_is_zero(self):
        b = ProgramBuilder()
        with b.function("f", args=[]) as f:
            r = f.reg()
            f.emit(Op.FSQRT, r, -4.0)
            f.emit(Op.CVTFI, r, r)
            f.ret(r)
        assert _run1(b.build(), "f", []) == 0

    def test_lea_computes_address_without_access(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            r = f.reg()
            f.lea(r, Mem(f.a(0), disp=16, index=f.a(0), scale=2))
            f.ret(r)
        assert _run1(b.build(), "f", [10]) == 10 + 16 + 20


class TestMemoryOperands:
    def test_cisc_add_with_memory_source(self):
        b = ProgramBuilder()
        data = b.data("d", 8)
        with b.function("f", args=[]) as f:
            r = f.reg()
            f.mov(r, 5)
            f.emit(Op.ADD, r, r, Mem(None, disp=data.value))
            f.ret(r)
        m = Machine(b.build())
        m.memory.store(data.value, 37)
        m.spawn("f", [])
        m.run()
        assert m.threads[0].retval == 42

    def test_store_to_memory_destination(self):
        b = ProgramBuilder()
        data = b.data("d", 8)
        with b.function("f", args=["v"]) as f:
            f.store(Mem(None, disp=data.value), f.a(0))
            f.ret(0)
        m = Machine(b.build())
        m.spawn("f", [99])
        m.run()
        assert m.memory.load(data.value) == 99

    def test_indexed_addressing(self):
        b = ProgramBuilder()
        data = b.data("d", 8 * 10)
        with b.function("f", args=["i"]) as f:
            r = f.reg()
            f.load(r, Mem(None, disp=data.value, index=f.a(0), scale=8))
            f.ret(r)
        m = Machine(b.build())
        m.memory.write_words(data.value, [10, 11, 12, 13])
        m.spawn("f", [3])
        m.run()
        assert m.threads[0].retval == 13


class TestCallsAndFrames:
    def test_call_abi_roundtrip(self):
        program = build_call_program()
        assert _run1(program, "worker", [6]) == 72

    def test_recursion(self):
        b = ProgramBuilder()
        with b.function("fact", args=["n"]) as f:
            r = f.reg()
            t = f.reg()

            def base():
                f.mov(r, 1)

            def rec():
                f.sub(t, f.a(0), 1)
                f.call(r, "fact", [t])
                f.mul(r, r, f.a(0))

            f.if_else(f.a(0), "<=", 1, base, rec)
            f.ret(r)
        assert _run1(b.build(), "fact", [6]) == 720

    def test_callee_frames_do_not_clobber_caller_locals(self):
        b = ProgramBuilder()
        with b.function("callee", args=[]) as f:
            off = f.stack_alloc(8)
            f.store(f.stack_slot(off), 1234)
            f.ret(0)
        with b.function("caller", args=[]) as f:
            off = f.stack_alloc(8)
            v = f.reg()
            f.store(f.stack_slot(off), 42)
            f.call(None, "callee", [])
            f.load(v, f.stack_slot(off))
            f.ret(v)
        assert _run1(b.build(), "caller", []) == 42

    def test_wrong_arity_spawn_rejected(self):
        program = build_call_program()
        m = Machine(program)
        with pytest.raises(MachineError):
            m.spawn("worker", [1, 2])

    def test_wrong_arity_call_rejected(self):
        b = ProgramBuilder()
        with b.function("g", args=["x", "y"]) as f:
            f.ret(0)
        with b.function("f", args=[]) as f:
            r = f.reg()
            f.call(r, "g", [1])
            f.ret(r)
        with pytest.raises(MachineError):
            _run1(b.build(), "f", [])


class TestSynchronization:
    def test_contended_counter_is_exact(self):
        program, lock_addr, counter = build_lock_program(shared_lock=True)
        m = Machine(program, quantum=3)
        for t in range(16):
            m.spawn("worker", [t])
        m.run()
        assert m.memory.load(counter) == 16
        assert m.memory.load(lock_addr) == 0  # released

    def test_fine_grained_locks_no_contention(self):
        program, _lock_area, counter = build_lock_program(shared_lock=False)
        m = Machine(program, quantum=3)
        for t in range(8):
            m.spawn("worker", [t])
        m.run()
        for t in range(8):
            assert m.memory.load(counter + 8 * t) == 1

    def test_unlock_without_hold_raises(self):
        b = ProgramBuilder()
        lk = b.data("lk", 8)
        with b.function("f", args=[]) as f:
            f.unlock(lk)
            f.ret(0)
        with pytest.raises(MachineError):
            _run1(b.build(), "f", [])

    def test_self_deadlock_detected(self):
        b = ProgramBuilder()
        lk = b.data("lk", 8)
        with b.function("f", args=[]) as f:
            f.lock(lk)
            f.lock(lk)  # re-acquire own non-reentrant lock
            f.ret(0)
        with pytest.raises(DeadlockError):
            _run1(b.build(), "f", [])

    def test_barrier_releases_all_threads(self):
        b = ProgramBuilder()
        flags = b.data("flags", 8 * 8)
        with b.function("f", args=["tid"]) as f:
            a = f.reg()
            f.mul(a, f.a(0), 8)
            f.add(a, a, flags.value)
            f.store(Mem(a), 1)
            f.barrier(0)
            # After the barrier every thread's flag must be visible.
            total = f.reg()
            i = f.reg()
            v = f.reg()
            f.mov(total, 0)

            def body():
                f.load(v, Mem(i, disp=flags.value, scale=1))
                f.add(total, total, v)

            f.for_range(i, 0, 8 * 4, body, step=8)
            f.ret(total)
        m = Machine(b.build(), quantum=2)
        for t in range(4):
            m.spawn("f", [t])
        m.run()
        assert all(t.retval == 4 for t in m.threads)

    def test_atomic_add_returns_old_value(self):
        b = ProgramBuilder()
        ctr = b.data("ctr", 8)
        with b.function("f", args=[]) as f:
            old = f.reg()
            f.atomic_add(old, Mem(None, disp=ctr.value), 5)
            f.ret(old)
        m = Machine(b.build())
        m.memory.store(ctr.value, 7)
        m.spawn("f", [])
        m.run()
        assert m.threads[0].retval == 7
        assert m.memory.load(ctr.value) == 12

    def test_xchg_swaps(self):
        b = ProgramBuilder()
        d = b.data("d", 8)
        with b.function("f", args=["v"]) as f:
            r = f.reg()
            f.mov(r, f.a(0))
            f.emit(Op.XCHG, r, Mem(None, disp=d.value))
            f.ret(r)
        m = Machine(b.build())
        m.memory.store(d.value, 111)
        m.spawn("f", [222])
        m.run()
        assert m.threads[0].retval == 111
        assert m.memory.load(d.value) == 222


class TestIOAndLimits:
    def test_io_roundtrip(self):
        b = ProgramBuilder()
        with b.function("f", args=[]) as f:
            v = f.reg()
            f.io_read(v)
            f.add(v, v, 1)
            f.io_write(v)
            f.ret(v)
        m = Machine(b.build())
        m.spawn("f", [], io_in=[41])
        m.run()
        assert m.threads[0].io_out == [42]

    def test_io_read_exhausted_returns_zero(self):
        b = ProgramBuilder()
        with b.function("f", args=[]) as f:
            v = f.reg()
            f.io_read(v)
            f.ret(v)
        assert _run1(b.build(), "f", []) == 0

    def test_instruction_limit_enforced(self):
        b = ProgramBuilder()
        with b.function("f", args=[]) as f:
            i = f.reg()
            f.mov(i, 0)
            f.while_(lambda: (i, ">=", 0), lambda: f.add(i, i, 1))
            f.ret(0)
        with pytest.raises(InstructionLimitError):
            _run1(b.build(), "f", [], max_instructions=10_000)

    def test_unlinked_program_rejected(self):
        from repro.program import Program
        with pytest.raises(MachineError):
            Machine(Program())

    def test_determinism_across_runs(self):
        program, _lock, counter = build_lock_program(shared_lock=True)

        def trail():
            m = Machine(program, quantum=5)
            for t in range(6):
                m.spawn("worker", [t])
            m.run()
            return [t.retval for t in m.threads]

        assert trail() == trail()
