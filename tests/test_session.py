"""Tests for the staged AnalysisSession: caching, determinism, parallelism."""

import os

import pytest

from repro import analyze_program, trace_program
from repro.core import AnalyzerConfig, analyze_traces, sweep_warp_sizes
from repro.session import AnalysisSession
from repro.workloads import runner

from util import build_lock_program, run_traced

#: (workload, emulate_locks) pairs for the jobs-parity matrix.
PARITY_WORKLOADS = [
    ("vectoradd", False),
    ("nn", False),
    ("btree", False),
    ("dsb_text", False),
    ("memcached", True),
]
N_THREADS = 16


def _assert_reports_equal(a, b):
    assert a.workload == b.workload
    assert a.simt_efficiency == b.simt_efficiency
    assert a.metrics.issues == b.metrics.issues
    assert a.metrics.thread_instructions == b.metrics.thread_instructions
    assert a.metrics.warp_efficiencies == b.metrics.warp_efficiencies
    assert a.heap_transactions == b.heap_transactions
    assert a.stack_transactions == b.stack_transactions
    assert a.metrics.divergence_events == b.metrics.divergence_events
    assert (a.metrics.locks.serialized_issues
            == b.metrics.locks.serialized_issues)
    assert {n: s.issues for n, s in a.metrics.per_function.items()} \
        == {n: s.issues for n, s in b.metrics.per_function.items()}


def _report_payloads(cache_dir):
    """All stored report payload bytes, keyed by file name."""
    payloads = {}
    top = os.path.join(cache_dir, "objects", "report")
    for dirpath, _subdirs, names in os.walk(top):
        for name in names:
            if name.endswith(".pkl"):
                with open(os.path.join(dirpath, name), "rb") as inp:
                    payloads[name] = inp.read()
    return payloads


class TestStagedPipeline:
    def test_stages_match_one_shot_analysis(self):
        session = AnalysisSession()
        traces = session.trace("dsb_text", n_threads=N_THREADS)
        fields = session.trace_fields("dsb_text", N_THREADS)
        dcfgs = session.prepare(traces, fields=fields)
        config = AnalyzerConfig(warp_size=8)
        staged = session.replay(traces, config=config, dcfgs=dcfgs)
        direct = analyze_traces(traces, warp_size=8)
        _assert_reports_equal(staged, direct)

    def test_analyze_matches_stages(self):
        session = AnalysisSession()
        config = AnalyzerConfig(warp_size=8)
        full = session.analyze("nn", n_threads=N_THREADS, config=config)
        traces = session.trace("nn", n_threads=N_THREADS)
        direct = analyze_traces(traces, warp_size=8)
        _assert_reports_equal(full, direct)
        # The trace stage ran exactly once for both calls.
        assert session.executions == 1

    def test_transform_stage_changes_program(self):
        session = AnalysisSession()
        instance = session.build("vectoradd", N_THREADS)
        assert session.transform(instance.program, "O1") is instance.program
        o0 = session.transform(instance.program, "O0")
        assert o0 is not instance.program
        with pytest.raises(ValueError, match="optimization level"):
            session.transform(instance.program, "O9")

    def test_opt_level_traces_differ(self):
        session = AnalysisSession()
        base = session.trace("vectoradd", n_threads=N_THREADS)
        spilled = session.trace("vectoradd", n_threads=N_THREADS,
                                opt_level="O0")
        assert spilled.total_instructions > base.total_instructions
        assert session.executions == 2

    def test_sweep_shares_trace_stage(self):
        session = AnalysisSession()
        reports = session.sweep("dsb_text", (4, 8, 16),
                                n_threads=32)
        assert sorted(reports) == [4, 8, 16]
        effs = [reports[w].simt_efficiency for w in (4, 8, 16)]
        assert effs == sorted(effs, reverse=True)
        assert session.executions == 1


class TestArtifactCaching:
    def test_warm_session_skips_machine_execution(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = AnalysisSession(cache_dir=cache)
        cold_report = cold.analyze("vectoradd", n_threads=N_THREADS)
        assert cold.executions == 1

        warm = AnalysisSession(cache_dir=cache)
        warm_report = warm.analyze("vectoradd", n_threads=N_THREADS)
        assert warm.executions == 0
        assert warm.cache_stats.hits == 1
        _assert_reports_equal(cold_report, warm_report)

    def test_warm_session_never_calls_the_tracer(self, tmp_path,
                                                 monkeypatch):
        cache = str(tmp_path / "cache")
        AnalysisSession(cache_dir=cache).analyze("nn", n_threads=N_THREADS)

        def explode(*_args, **_kwargs):
            raise AssertionError("tracer stage invoked on a cache hit")

        monkeypatch.setattr(runner, "execute_traced", explode)
        warm = AnalysisSession(cache_dir=cache)
        report = warm.analyze("nn", n_threads=N_THREADS)
        assert report.n_threads == N_THREADS

    def test_warm_trace_stage_reuses_stored_traces(self, tmp_path,
                                                   monkeypatch):
        cache = str(tmp_path / "cache")
        cold = AnalysisSession(cache_dir=cache)
        original = cold.trace("btree", n_threads=N_THREADS)

        monkeypatch.setattr(
            runner, "execute_traced",
            lambda *a, **k: pytest.fail("re-traced despite cache"),
        )
        warm = AnalysisSession(cache_dir=cache)
        loaded = warm.trace("btree", n_threads=N_THREADS)
        assert loaded.total_instructions == original.total_instructions
        # A different analyzer config replays the *stored* traces.
        report = warm.analyze("btree", n_threads=N_THREADS,
                              config=AnalyzerConfig(warp_size=4))
        assert report.warp_size == 4

    def test_distinct_configs_are_distinct_artifacts(self, tmp_path):
        cache = str(tmp_path / "cache")
        session = AnalysisSession(cache_dir=cache)
        narrow = session.analyze("dsb_text", n_threads=32,
                                 config=AnalyzerConfig(warp_size=4))
        wide = session.analyze("dsb_text", n_threads=32,
                               config=AnalyzerConfig(warp_size=32))
        assert narrow.warp_size == 4
        assert wide.warp_size == 32
        assert len(_report_payloads(cache)) == 2

    def test_cli_warm_cache_skips_execution(self, tmp_path, monkeypatch,
                                            capsys):
        from repro.cli import main

        cache = str(tmp_path / "cache")
        assert main(["analyze", "vectoradd", "--threads", "16",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()

        def explode(*_args, **_kwargs):
            raise AssertionError("machine executed on warm CLI run")

        monkeypatch.setattr(runner, "execute_traced", explode)
        assert main(["analyze", "vectoradd", "--threads", "16",
                     "--cache-dir", cache]) == 0
        assert "SIMT efficiency" in capsys.readouterr().out


class TestDeterminism:
    def test_same_fingerprint_byte_identical_artifact(self, tmp_path):
        first_dir = str(tmp_path / "first")
        second_dir = str(tmp_path / "second")
        AnalysisSession(cache_dir=first_dir).analyze(
            "dsb_text", n_threads=N_THREADS
        )
        AnalysisSession(cache_dir=second_dir).analyze(
            "dsb_text", n_threads=N_THREADS
        )
        assert _report_payloads(first_dir) == _report_payloads(second_dir)

    def test_jobs_do_not_change_stored_artifact(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        config = AnalyzerConfig(warp_size=4, emulate_locks=True)
        serial = AnalysisSession(cache_dir=serial_dir, jobs=1).analyze(
            "memcached", n_threads=N_THREADS, config=config
        )
        parallel = AnalysisSession(cache_dir=parallel_dir, jobs=4).analyze(
            "memcached", n_threads=N_THREADS, config=config
        )
        _assert_reports_equal(serial, parallel)
        assert _report_payloads(serial_dir) == _report_payloads(parallel_dir)


class TestParallelReplayParity:
    @pytest.mark.parametrize("name,emulate_locks", PARITY_WORKLOADS)
    def test_jobs_replay_is_bit_identical(self, name, emulate_locks):
        session = AnalysisSession()
        traces = session.trace(name, n_threads=N_THREADS)
        config = AnalyzerConfig(warp_size=4, emulate_locks=emulate_locks)
        serial = session.replay(traces, config=config, jobs=1)
        parallel = session.replay(traces, config=config, jobs=4)
        _assert_reports_equal(serial, parallel)

    def test_trace_many_matches_serial_tracing(self, tmp_path):
        names = ["vectoradd", "nn", "btree"]
        parallel = AnalysisSession(cache_dir=str(tmp_path / "p"), jobs=3)
        traced = parallel.trace_many(names, n_threads=N_THREADS)
        serial = AnalysisSession()
        from repro.artifacts import serialize_traces

        for name in names:
            expected = serial.trace(name, n_threads=N_THREADS)
            assert serialize_traces(traced[name]) \
                == serialize_traces(expected)
        # Concurrent generation still populated the artifact store.
        warm = AnalysisSession(cache_dir=str(tmp_path / "p"))
        warm.trace_many(names, n_threads=N_THREADS)
        assert warm.executions == 0


class TestConfigPlumbingFixes:
    def _lock_traces(self):
        program, _lock, _counter = build_lock_program(shared_lock=True)
        spawns = [("worker", [t], None) for t in range(8)]
        traces, _machine = run_traced(program, spawns, ["worker"])
        return program, spawns, traces

    def test_sweep_accepts_full_config(self):
        _program, _spawns, traces = self._lock_traces()
        config = AnalyzerConfig(emulate_locks=True,
                                lock_reconvergence="exit")
        swept = sweep_warp_sizes(traces, (4,), config=config)
        direct = analyze_traces(traces, warp_size=4, emulate_locks=True,
                                lock_reconvergence="exit")
        _assert_reports_equal(swept[4], direct)

    def test_sweep_does_not_mutate_caller_config(self):
        _program, _spawns, traces = self._lock_traces()
        config = AnalyzerConfig(warp_size=999, emulate_locks=True)
        sweep_warp_sizes(traces, (4, 8), config=config)
        assert config.warp_size == 999
        assert config.emulate_locks is True

    def test_sweep_lock_reconvergence_keyword(self):
        _program, _spawns, traces = self._lock_traces()
        relaxed = sweep_warp_sizes(traces, (4,), emulate_locks=True,
                                   lock_reconvergence="unlock")
        strict = sweep_warp_sizes(traces, (4,), emulate_locks=True,
                                  lock_reconvergence="exit")
        assert strict[4].simt_efficiency < relaxed[4].simt_efficiency

    def test_analyze_program_forwards_lock_reconvergence(self):
        program, spawns, traces = self._lock_traces()
        for policy in ("unlock", "exit"):
            helper = analyze_program(
                program, spawns, ["worker"], warp_size=4,
                emulate_locks=True, lock_reconvergence=policy,
            )
            direct = analyze_traces(traces, warp_size=4, emulate_locks=True,
                                    lock_reconvergence=policy)
            assert helper.simt_efficiency == direct.simt_efficiency
            assert helper.metrics.issues == direct.metrics.issues

    def test_analyze_program_accepts_full_config(self):
        program, spawns, traces = self._lock_traces()
        config = AnalyzerConfig(warp_size=4, emulate_locks=True,
                                lock_reconvergence="exit")
        helper = analyze_program(program, spawns, ["worker"], config=config,
                                 workload="test")
        direct = analyze_traces(traces, warp_size=4, emulate_locks=True,
                                lock_reconvergence="exit")
        _assert_reports_equal(helper, direct)

    def test_trace_program_routes_through_session(self):
        program, spawns, _traces = self._lock_traces()
        session = AnalysisSession()
        traces = trace_program(program, spawns, ["worker"],
                               session=session)
        assert session.executions == 1
        assert len(traces) == 8
