"""Tests for the report objects and the end-to-end pipeline helpers."""

import pytest

from repro import analyze_program, trace_program
from repro.core import analyze_traces
from repro.core.report import AnalysisReport, FunctionReport
from repro.machine import SEG_HEAP, SEG_STACK

from util import build_call_program, build_diamond_program, run_traced


class TestFunctionReports:
    def _report(self):
        program = build_call_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        return analyze_traces(traces, warp_size=4)

    def test_shares_sum_to_one(self):
        report = self._report()
        total = sum(fr.instruction_share for fr in report.per_function())
        assert total == pytest.approx(1.0)

    def test_sorted_by_share_descending(self):
        report = self._report()
        shares = [fr.instruction_share for fr in report.per_function()]
        assert shares == sorted(shares, reverse=True)

    def test_min_share_filter(self):
        report = self._report()
        full = report.per_function()
        filtered = report.per_function(min_share=0.5)
        assert len(filtered) <= len(full)
        for fr in filtered:
            assert fr.instruction_share >= 0.5

    def test_function_efficiency_lookup(self):
        report = self._report()
        assert 0 < report.function_efficiency("square") <= 1.0
        with pytest.raises(KeyError):
            report.function_efficiency("not-a-function")

    def test_repr_is_informative(self):
        report = self._report()
        assert "eff=" in repr(report)
        fr = report.per_function()[0]
        assert fr.name in repr(fr)

    def test_format_text_top_limits_rows(self):
        report = self._report()
        text_all = report.format_text(top=10)
        text_one = report.format_text(top=1)
        assert len(text_one.splitlines()) < len(text_all.splitlines())


class TestTransactionsAccessors:
    def test_segment_specific_and_total(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=4)
        # Diamond program touches no memory at all.
        assert report.heap_transactions == 0
        assert report.stack_transactions == 0
        assert report.transactions_per_load_store() == 0.0
        assert report.transactions_per_load_store(SEG_HEAP) == 0.0
        assert report.transactions_per_load_store(SEG_STACK) == 0.0


class TestPipelineHelpers:
    def test_trace_program_runs_setup(self):
        from repro.isa import Mem
        from repro.program import ProgramBuilder

        b = ProgramBuilder()
        d = b.data("d", 8)
        with b.function("worker", args=[]) as f:
            v = f.reg()
            f.load(v, Mem(None, disp=d.value))
            f.ret(v)
        program = b.build()
        seen = {}

        def setup(machine):
            machine.memory.store(d.value, 777)
            seen["called"] = True

        traces = trace_program(
            program, [("worker", [], None)], ["worker"], setup=setup
        )
        assert seen["called"]
        assert len(traces) == 1

    def test_analyze_program_one_call(self):
        program = build_diamond_program()
        report = analyze_program(
            program,
            spawns=[("worker", [t], None) for t in range(8)],
            roots=["worker"],
            warp_size=8,
            workload="pipeline-test",
        )
        assert isinstance(report, AnalysisReport)
        assert report.workload == "pipeline-test"
        assert report.n_threads == 8

    def test_exclude_propagates(self):
        program = build_call_program()
        traces = trace_program(
            program, [("worker", [1], None)], ["worker"],
            exclude=["square"],
        )
        assert traces.threads[0].skipped.get("filtered", 0) > 0

    def test_machine_kwargs_forwarded(self):
        program = build_diamond_program()
        from repro.machine import InstructionLimitError

        with pytest.raises(InstructionLimitError):
            trace_program(
                program,
                [("worker", [t], None) for t in range(4)],
                ["worker"],
                max_instructions=3,
            )

    def test_emulate_locks_flag_passthrough(self):
        from util import build_lock_program

        program, _lock, _counter = build_lock_program(shared_lock=True)
        spawns = [("worker", [t], None) for t in range(4)]
        relaxed = analyze_program(program, spawns, ["worker"],
                                  warp_size=4, emulate_locks=False)
        strict = analyze_program(program, spawns, ["worker"],
                                 warp_size=4, emulate_locks=True)
        assert strict.simt_efficiency < relaxed.simt_efficiency
