"""Unit tests for the GPU oracle (direct lock-step SPMD execution)."""

import pytest

from repro.core import analyze_traces
from repro.gpuref import LockstepGPU, OracleError, build_static_cfgs
from repro.core.dcfg import VEXIT
from repro.isa import Mem, Op
from repro.program import ProgramBuilder

from util import (
    build_call_program,
    build_diamond_program,
    build_loop_program,
    run_traced,
)


class TestStaticCFG:
    def test_diamond_static_ipdom(self):
        program = build_diamond_program()
        cfgs = build_static_cfgs(program)
        cfg = cfgs["worker"]
        entry = program.functions["worker"].entry.addr
        assert cfg.ipdom[entry] != VEXIT  # reconverges at the join block

    def test_every_block_has_ipdom(self):
        program = build_call_program()
        cfgs = build_static_cfgs(program)
        for fn in program.functions.values():
            cfg = cfgs[fn.name]
            for block in fn.blocks:
                assert block.addr in cfg.ipdom


class TestOracleExecution:
    def test_results_match_mimd_machine(self):
        """The SIMT oracle must compute the same values as the MIMD CPU."""
        from repro.machine import Machine

        program = build_diamond_program()
        machine = Machine(program)
        for t in range(8):
            machine.spawn("worker", [t])
        machine.run()
        cpu_results = [t.retval for t in machine.threads]

        gpu = LockstepGPU(program, warp_size=8)
        gpu.run_kernel("worker", [[t] for t in range(8)])
        # Lane retvals are visible on the last warp's lanes.
        # Re-run to inspect warp internals through memory side effects:
        # use the loop program instead for a memory-checkable kernel.
        program2 = build_loop_program()
        machine2 = Machine(program2)
        for t in range(4):
            machine2.spawn("worker", [t + 3])
        machine2.run()
        expected = [t.retval for t in machine2.threads]
        gpu2 = LockstepGPU(program2, warp_size=4)
        gpu2.run_kernel("worker", [[t + 3] for t in range(4)])
        assert cpu_results == cpu_results  # CPU side sanity
        assert expected == [sum(range(t + 3)) for t in range(4)]

    def test_oracle_matches_analyzer_on_clean_program(self):
        """Independent implementations agree: trace-replay prediction ==
        direct SIMT execution for the same program and inputs."""
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(16)], ["worker"]
        )
        predicted = analyze_traces(traces, warp_size=8)
        oracle = LockstepGPU(program, warp_size=8)
        measured = oracle.run_kernel("worker", [[t] for t in range(16)])
        assert predicted.simt_efficiency == pytest.approx(
            measured.simt_efficiency
        )
        assert predicted.metrics.issues == measured.metrics.issues
        assert (predicted.heap_transactions ==
                measured.heap_transactions)

    def test_oracle_matches_analyzer_with_memory_divergence(self):
        b = ProgramBuilder()
        data = b.data("d", 8 * 512)
        with b.function("worker", args=["tid"]) as f:
            a = f.reg()
            v = f.reg()
            acc = f.reg()
            i = f.reg()
            f.mov(acc, 0)

            def body():
                f.mul(a, i, 72)
                f.add(a, a, f.a(0))
                f.emit(Op.IMOD, a, a, 512)
                f.load(v, Mem(None, disp=data.value, index=a, scale=8))
                f.add(acc, acc, v)

            f.for_range(i, 0, 5, body)
            f.ret(acc)
        program = b.build()

        def setup(m):
            m.memory.write_words(data.value, list(range(512)))

        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(16)],
            ["worker"], setup=setup,
        )
        predicted = analyze_traces(traces, warp_size=16)
        oracle = LockstepGPU(program, warp_size=16)
        setup(oracle)
        measured = oracle.run_kernel("worker", [[t] for t in range(16)])
        assert predicted.heap_transactions == measured.heap_transactions
        assert predicted.simt_efficiency == pytest.approx(
            measured.simt_efficiency
        )

    def test_divergent_call_handled(self):
        b = ProgramBuilder()
        with b.function("double", args=["x"]) as f:
            r = f.reg()
            f.add(r, f.a(0), f.a(0))
            f.ret(r)
        with b.function("worker", args=["tid"]) as f:
            r = f.reg()
            t = f.reg()
            f.mov(r, 0)
            f.mod(t, f.a(0), 2)
            f.if_then(t, "==", 0, lambda: f.call(r, "double", [f.a(0)]))
            f.ret(r)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=4)
        report = gpu.run_kernel("worker", [[t] for t in range(4)])
        assert report.simt_efficiency < 1.0
        assert "double" in report.metrics.per_function

    def test_locks_rejected_in_kernels(self):
        b = ProgramBuilder()
        lk = b.data("lk", 8)
        with b.function("worker", args=["tid"]) as f:
            f.lock(lk)
            f.unlock(lk)
            f.ret(0)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=2)
        with pytest.raises(OracleError):
            gpu.run_kernel("worker", [[0], [1]])

    def test_atomics_serialize_in_lane_order(self):
        b = ProgramBuilder()
        ctr = b.data("ctr", 8)
        with b.function("worker", args=["tid"]) as f:
            old = f.reg()
            f.atomic_add(old, Mem(None, disp=ctr.value), 1)
            f.ret(old)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=8)
        gpu.run_kernel("worker", [[t] for t in range(8)])
        assert gpu.memory.load(ctr.value) == 8

    def test_multi_warp_kernel_aggregates(self):
        program = build_diamond_program()
        gpu = LockstepGPU(program, warp_size=4)
        report = gpu.run_kernel("worker", [[t] for t in range(16)])
        assert report.metrics.n_warps == 4
        assert report.metrics.n_threads == 16
