"""Edge-case tests for the SIMT-stack replay engine."""

import pytest

from repro.core import (
    ReplayError,
    WarpReplayer,
    analyze_traces,
    build_dcfgs,
    compute_all_ipdoms,
)
from repro.isa import Mem
from repro.program import ProgramBuilder

from util import build_diamond_program, run_traced


def _replay(traces, warp_size, **kw):
    dcfgs = build_dcfgs(traces)
    compute_all_ipdoms(dcfgs)
    replayer = WarpReplayer(list(traces), dcfgs, warp_size, **kw)
    return replayer.run()


class TestHaltAndEarlyExit:
    def test_halt_in_root_function(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            t = f.reg()
            f.mod(t, f.a(0), 2)
            f.if_then(t, "==", 0, f.halt)
            f.nop()
            f.ret(0)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        metrics = _replay(traces, 4)
        assert metrics.thread_instructions == traces.total_instructions

    def test_halt_inside_callee(self):
        b = ProgramBuilder()
        with b.function("maybe_die", args=["x"]) as f:
            f.if_then(f.a(0), "==", 0, f.halt)
            f.ret(1)
        with b.function("worker", args=["tid"]) as f:
            r = f.reg()
            t = f.reg()
            f.mod(t, f.a(0), 2)
            f.call(r, "maybe_die", [t])
            f.add(r, r, 10)
            f.ret(r)
        program = b.build()
        traces, machine = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        # Even tids died inside the callee; odd tids returned 11.
        assert [t.retval for t in machine.threads] == [None, 11, None, 11]
        metrics = _replay(traces, 4)
        assert metrics.thread_instructions == traces.total_instructions

    def test_early_return_reconverges(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            t = f.reg()
            f.mod(t, f.a(0), 2)
            f.if_then(t, "==", 0, lambda: f.ret(0))
            f.nop()
            f.nop()
            f.ret(1)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        metrics = _replay(traces, 8)
        assert 0 < metrics.efficiency() < 1.0
        assert metrics.thread_instructions == traces.total_instructions


class TestDegenerateWarps:
    def test_empty_warp_rejected(self):
        traces, _m = run_traced(
            build_diamond_program(), [("worker", [0], None)], ["worker"]
        )
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        with pytest.raises(ValueError):
            WarpReplayer([], dcfgs, 4)

    def test_single_thread_warp(self):
        traces, _m = run_traced(
            build_diamond_program(), [("worker", [1], None)], ["worker"]
        )
        metrics = _replay(traces, 32)
        assert metrics.efficiency() == pytest.approx(1 / 32)

    def test_bad_lock_reconvergence_policy_rejected(self):
        traces, _m = run_traced(
            build_diamond_program(), [("worker", [0], None)], ["worker"]
        )
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        with pytest.raises(ValueError):
            WarpReplayer(list(traces), dcfgs, 4,
                         lock_reconvergence="banana")


class TestTraceCorruption:
    def test_truncated_trace_detected(self):
        traces, _m = run_traced(
            build_diamond_program(),
            [("worker", [t], None) for t in range(2)],
            ["worker"],
        )
        # Corrupt: chop one thread's stream mid-way.
        traces.threads[1].tokens = traces.threads[1].tokens[:1]
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        # Either it replays (treating the cut as thread end) or raises a
        # ReplayError -- it must never silently miscount.
        try:
            metrics = WarpReplayer(list(traces), dcfgs, 2).run()
        except ReplayError:
            return
        total = sum(t.n_instructions for t in traces)
        assert metrics.thread_instructions == total

    def test_foreign_block_rejected(self):
        traces, _m = run_traced(
            build_diamond_program(),
            [("worker", [t], None) for t in range(2)],
            ["worker"],
        )
        tokens = traces.threads[0].tokens
        kind, _addr, nins, mems = tokens[0]
        tokens[0] = (kind, 0xDEAD000, nins, mems)
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        with pytest.raises(ReplayError):
            WarpReplayer(list(traces), dcfgs, 2).run()


class TestDeepNesting:
    def test_four_level_call_chain_with_divergence(self):
        b = ProgramBuilder()
        for depth in range(4):
            callee = f"level{depth + 1}" if depth < 3 else None
            with b.function(f"level{depth}", args=["x"]) as f:
                r = f.reg()
                f.add(r, f.a(0), 1)
                if callee:
                    f.if_then(
                        r, ">", depth,
                        lambda c=callee, fr=f, rr=r: fr.call(rr, c, [rr]),
                    )
                f.ret(r)
        with b.function("worker", args=["tid"]) as f:
            r = f.reg()
            f.call(r, "level0", [f.a(0)])
            f.ret(r)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=8)
        assert (report.metrics.thread_instructions
                == traces.total_instructions)
        assert "level3" in report.metrics.per_function

    def test_mutual_recursion(self):
        b = ProgramBuilder()
        with b.function("is_even", args=["n"]) as f:
            r = f.reg()

            def rec():
                t = f.reg()
                f.sub(t, f.a(0), 1)
                f.call(r, "is_odd", [t])

            f.if_else(f.a(0), "==", 0, lambda: f.mov(r, 1), rec)
            f.ret(r)
        with b.function("is_odd", args=["n"]) as f:
            r = f.reg()

            def rec():
                t = f.reg()
                f.sub(t, f.a(0), 1)
                f.call(r, "is_even", [t])

            f.if_else(f.a(0), "==", 0, lambda: f.mov(r, 0), rec)
            f.ret(r)
        with b.function("worker", args=["n"]) as f:
            r = f.reg()
            f.call(r, "is_even", [f.a(0)])
            f.ret(r)
        program = b.build()
        traces, machine = run_traced(
            program, [("worker", [n], None) for n in range(6)], ["worker"]
        )
        assert [t.retval for t in machine.threads] == [1, 0, 1, 0, 1, 0]
        report = analyze_traces(traces, warp_size=6)
        assert (report.metrics.thread_instructions
                == traces.total_instructions)


class TestMemoryEdge:
    def test_byte_sized_accesses_coalesce(self):
        b = ProgramBuilder()
        d = b.data("d", 64)
        with b.function("worker", args=["tid"]) as f:
            v = f.reg()
            f.load(v, Mem(None, disp=d.value, index=f.a(0), scale=1,
                          size=1))
            f.ret(v)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(32)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=32)
        # 32 one-byte accesses over 32 consecutive bytes = 1 transaction.
        assert report.heap_transactions == 1
