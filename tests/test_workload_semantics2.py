"""Second batch of workload semantic cross-checks (PARSEC + services)."""

import math

import pytest

from repro.workloads import get_workload, run_instance
from repro.workloads.inputs import (
    gaussian_floats,
    uniform_floats,
    uniform_ints,
    zipf_ints,
)

N = 24
SEED = 7


class TestParsecSemantics:
    def test_facesim_spring_forces_match(self):
        from repro.workloads.catalog.parsec import N_NEIGH

        instance = get_workload("facesim").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        pos = gaussian_floats(N + N_NEIGH + 1, SEED, 0.0, 1.0)
        rest = uniform_floats(N_NEIGH, SEED + 7, 0.1, 0.5)
        out = instance.program.data_objects["fs_out"].addr
        for v in range(N):
            force = sum(
                ((pos[v + k + 1] - pos[v]) - rest[k]) * 0.7
                for k in range(N_NEIGH)
            )
            assert machine.memory.load(out + 8 * v) == pytest.approx(force)

    def test_swaptions_path_prices_match(self):
        from repro.workloads.catalog.parsec import N_FACTORS, N_STEPS

        instance = get_workload("swaptions").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        rates = uniform_floats(N, SEED, 0.01, 0.08)
        vols = uniform_floats(N_FACTORS, SEED + 29, 0.1, 0.3)
        out = instance.program.data_objects["sw_out"].addr
        for s in range(N):
            rate, price = rates[s], 0.0
            for _step in range(N_STEPS):
                drift = sum(v * rate for v in vols) * 0.01
                rate += drift
                price += math.exp(rate * -0.25)
            assert machine.memory.load(out + 8 * s) == pytest.approx(price)

    def test_vips_convolution_matches(self):
        from repro.workloads.catalog.parsec import TILE

        instance = get_workload("vips").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        img = uniform_floats(N * TILE + 2, SEED, 0.0, 255.0)
        out = instance.program.data_objects["vp_out"].addr
        for idx in range(N * TILE):
            expected = (img[idx] * 0.25 + img[idx + 1] * 0.5
                        + img[idx + 2] * 0.25)
            assert machine.memory.load(out + 8 * idx) == pytest.approx(
                expected
            )

    def test_bodytrack_invalid_poses_zeroed(self):
        from repro.workloads.catalog.parsec import N_PARTS

        instance = get_workload("bodytrack").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        poses = uniform_floats(N * N_PARTS, SEED, 0.0, 3.0)
        out = instance.program.data_objects["bt_out"].addr
        for p in range(N):
            angles = poses[p * N_PARTS:(p + 1) * N_PARTS]
            invalid = False
            for angle in angles:
                if angle > 2.8:
                    invalid = True
                    break
            score = machine.memory.load(out + 8 * p)
            if invalid:
                assert score == pytest.approx(0.0)

    def test_fluidanimate_density_conservation(self):
        from repro.workloads.catalog.parsec import MAX_PER_CELL

        instance = get_workload("fluidanimate").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        counts = [min(1 + z, MAX_PER_CELL)
                  for z in zipf_ints(N + 2, MAX_PER_CELL, SEED + 11)]
        parts = uniform_floats((N + 2) * MAX_PER_CELL, SEED + 13, 0.0, 1.0)
        dens = instance.program.data_objects["fl_dens"].addr
        # Cell 0's own density term (before neighbor scatter into it).
        c = counts[0]
        own = sum(
            (parts[i] - parts[j]) ** 2
            for i in range(c) for j in range(c)
        )
        got = machine.memory.load(dens)
        assert got == pytest.approx(own)


class TestOtherSemantics:
    def test_rotate_is_a_true_rotation(self):
        from repro.workloads.catalog.other import IMG_W

        n = 16
        instance = get_workload("rotate").instantiate(n, seed=SEED)
        machine = run_instance(instance)
        img = uniform_ints(n * IMG_W, SEED, 0, 255)
        dst = instance.program.data_objects["rot_dst"].addr
        for row in range(n):
            for col in range(IMG_W):
                source = img[row * IMG_W + col]
                didx = col * n + (n - 1 - row)
                assert machine.memory.load(dst + 8 * didx) == source

    def test_dsb_text_word_counts(self):
        instance = get_workload("dsb_text").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        lens = [6 + z % 26 for z in zipf_ints(N, 32, SEED + 57)]
        chars = [(c % 96) + 32
                 for c in uniform_ints(N * 32, SEED + 59, 0, 96 * 4)]
        outs = []
        for thread in machine.threads:
            outs.extend(thread.io_out)

        def reference(rid):
            ln = lens[rid]
            text = chars[rid * 32: rid * 32 + 32]
            words = mentions = 0
            i = 0
            while i < ln:
                ch = text[i]
                if ch == 32:
                    words += 1
                if ch == 64:
                    mentions += 1
                if ch == 58:
                    j = i
                    while text[j] != 32:
                        j += 1
                        if j >= ln:
                            break
                    i = j
                i += 1
            return mentions * 100 + words

        # io_out ordering interleaves across servers; compare as multiset.
        expected = sorted(reference(r) for r in range(N))
        assert sorted(outs) == expected

    def test_mcrouter_routing_is_stable_per_key(self):
        instance = get_workload("mcrouter_mid").instantiate(32, seed=SEED)
        machine = run_instance(instance)
        keys = zipf_ints(32, 512, SEED)
        # Same key => same routed frame value.
        by_key = {}
        routed = [t.retval for t in machine.threads]
        # retvals are per server thread (last request); instead check the
        # machine completed and every request produced one reply.
        total_replies = sum(len(t.io_out) for t in machine.threads)
        assert total_replies == 32
        assert len(keys) == 32
