"""Round-trip tests for trace-file (de)serialization.

The artifact store persists traces through :mod:`repro.tracer.io`, so the
save/load round trip must preserve every analysis-relevant field: token
streams, instruction counts, skip accounting, and (transitively) all
replay metrics.
"""

import io
import json

import pytest

from repro.artifacts import serialize_traces
from repro.core import analyze_traces
from repro.errors import TraceCorruptError
from repro.tracer import load_traces, save_traces
from repro.workloads import get_workload, trace_instance

WORKLOADS = ["vectoradd", "nn", "dsb_text", "btree", "memcached"]
N_THREADS = 16


def _trace(name):
    instance = get_workload(name).instantiate(N_THREADS)
    traces, _machine = trace_instance(instance)
    return instance, traces


def _round_trip(traces, program=None):
    buffer = io.StringIO()
    save_traces(traces, buffer)
    buffer.seek(0)
    return load_traces(buffer, program=program)


class TestRoundTripStructure:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_preserves_threads_and_tokens(self, tmp_path, name):
        instance, traces = _trace(name)
        path = str(tmp_path / f"{name}.jsonl")
        save_traces(traces, path)
        loaded = load_traces(path, program=instance.program)

        assert len(loaded) == len(traces)
        assert loaded.workload == traces.workload
        assert loaded.untraced_skipped == traces.untraced_skipped
        for original, restored in zip(traces.threads, loaded.threads):
            assert restored.index == original.index
            assert restored.cpu_tid == original.cpu_tid
            assert restored.root == original.root
            assert restored.tokens == original.tokens
            assert restored.skipped == original.skipped

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_preserves_instruction_and_skip_accounting(self, name):
        _instance, traces = _trace(name)
        loaded = _round_trip(traces)
        assert loaded.total_instructions == traces.total_instructions
        assert loaded.total_skipped == traces.total_skipped
        assert loaded.skipped_by_reason() == traces.skipped_by_reason()
        assert loaded.traced_fraction() == traces.traced_fraction()


class TestRoundTripReplayMetrics:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_replay_identical_before_and_after(self, name):
        _instance, traces = _trace(name)
        loaded = _round_trip(traces)
        emulate_locks = name == "memcached"
        before = analyze_traces(traces, warp_size=8,
                                emulate_locks=emulate_locks)
        after = analyze_traces(loaded, warp_size=8,
                               emulate_locks=emulate_locks)

        assert after.simt_efficiency == before.simt_efficiency
        assert after.metrics.issues == before.metrics.issues
        assert (after.metrics.thread_instructions
                == before.metrics.thread_instructions)
        assert after.heap_transactions == before.heap_transactions
        assert after.stack_transactions == before.stack_transactions
        assert (after.metrics.divergence_events
                == before.metrics.divergence_events)
        assert (after.metrics.locks.serialized_issues
                == before.metrics.locks.serialized_issues)
        assert (after.metrics.locks.contended_events
                == before.metrics.locks.contended_events)


class TestPackedNativeLoading:
    """Loaded traces stay columnar end to end.

    :func:`load_traces` attaches a :class:`PackedTrace` per thread
    without materializing token tuples; the whole analysis pipeline
    (DCFG scan, warp formation, packed replay, memo signatures) must
    run without ever flipping a thread out of packed-only mode.
    """

    def test_loaded_traces_are_packed_only(self):
        _instance, traces = _trace("vectoradd")
        loaded = _round_trip(traces)
        for thread in loaded.threads:
            assert thread.packed_only() is not None
            assert thread.n_tokens == len(thread.tokens)

    def test_analysis_never_materializes_tuples(self):
        _instance, traces = _trace("btree")
        loaded = _round_trip(traces)
        analyze_traces(loaded, warp_size=8)
        for thread in loaded.threads:
            assert thread.packed_only() is not None, thread.index

    def test_signatures_survive_the_round_trip(self):
        _instance, traces = _trace("memcached")
        loaded = _round_trip(traces)
        for original, restored in zip(traces.threads, loaded.threads):
            assert restored.signature == original.signature

    def test_packed_native_save_is_byte_identical(self):
        # to_records() feeds the same wire encoder as the tuple stream,
        # so artifact checksums do not depend on the representation.
        _instance, traces = _trace("vectoradd")
        loaded = _round_trip(traces)
        assert serialize_traces(loaded) == serialize_traces(traces)
        for thread in loaded.threads:
            assert thread.packed_only() is not None


class TestSerializationDeterminism:
    def test_same_traces_serialize_byte_identically(self):
        _instance, traces = _trace("dsb_text")
        assert serialize_traces(traces) == serialize_traces(traces)

    def test_fresh_runs_serialize_byte_identically(self):
        # The artifact store's content addressing relies on the machine
        # (and therefore the wire format) being fully deterministic.
        _i1, first = _trace("btree")
        _i2, second = _trace("btree")
        assert serialize_traces(first) == serialize_traces(second)

    def test_unknown_format_version_rejected(self):
        _instance, traces = _trace("vectoradd")
        text = serialize_traces(traces).decode("utf-8")
        header, _newline, body = text.partition("\n")
        record = json.loads(header)
        record["version"] = 999
        text = json.dumps(record) + "\n" + body
        with pytest.raises(ValueError, match="version"):
            load_traces(io.StringIO(text))


class TestCorruptionDetection:
    """Format v2: the checksummed stream refuses truncated/garbled input."""

    def _text(self, name="vectoradd"):
        _instance, traces = _trace(name)
        return serialize_traces(traces).decode("utf-8"), traces

    def test_empty_stream_rejected(self):
        with pytest.raises(TraceCorruptError, match="empty"):
            load_traces(io.StringIO(""))

    def test_truncated_mid_body_rejected(self):
        text, _traces = self._text()
        with pytest.raises(TraceCorruptError):
            load_traces(io.StringIO(text[: len(text) // 2]))

    def test_missing_last_record_rejected(self):
        # Whole-line truncation keeps every remaining line well-formed;
        # only the checksum (and the n_threads count) can catch it.
        text, _traces = self._text()
        lines = text.splitlines(True)
        with pytest.raises(TraceCorruptError):
            load_traces(io.StringIO("".join(lines[:-1])))

    def test_garbled_header_rejected(self):
        text, _traces = self._text()
        with pytest.raises(TraceCorruptError, match="JSON"):
            load_traces(io.StringIO("{" + text))

    def test_flipped_body_character_rejected(self):
        text, _traces = self._text()
        pos = text.index("\n") + 20
        flipped = text[:pos] + ("0" if text[pos] != "0" else "1") \
            + text[pos + 1:]
        with pytest.raises(TraceCorruptError, match="checksum"):
            load_traces(io.StringIO(flipped))

    def test_error_carries_site_and_hint(self):
        text, _traces = self._text()
        with pytest.raises(TraceCorruptError) as excinfo:
            load_traces(io.StringIO(text[:-30]))
        assert excinfo.value.site == "trace.load"
        assert "re-trace" in excinfo.value.hint \
            or "regenerated" in excinfo.value.hint

    def test_v1_stream_without_checksum_still_loads(self):
        # Schema tolerance: caches written before the checksum existed.
        text, traces = self._text()
        header_line, _newline, body = text.partition("\n")
        record = json.loads(header_line)
        record["version"] = 1
        del record["sha256"]
        v1_text = json.dumps(record) + "\n" + body
        loaded = load_traces(io.StringIO(v1_text))
        assert len(loaded) == len(traces)
        assert loaded.total_instructions == traces.total_instructions
