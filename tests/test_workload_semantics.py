"""Semantic cross-checks: workloads computed on the mini-ISA machine must
agree with independent pure-Python reference implementations.

These tests guard against the subtlest failure mode of a reproduction:
workloads that *run* and produce paper-like divergence statistics while
computing the wrong thing.
"""

import math

import pytest

from repro.workloads import get_workload, run_instance
from repro.workloads.inputs import (
    compressible_bytes,
    csr_graph,
    gaussian_floats,
    uniform_floats,
    uniform_ints,
    zipf_ints,
)

N = 24
SEED = 7


class TestGraphWorkloads:
    def test_bfs_marks_next_frontier_correctly(self):
        instance = get_workload("rodinia_bfs").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        # Recompute the expected one-level expansion in Python.
        offsets, cols = csr_graph(N, avg_degree=6, seed=SEED)
        src, dist = 0, [-1] * N
        dist[src] = 0
        level = [src]
        for depth in range(2):
            nxt = []
            for u in level:
                for e in range(offsets[u], offsets[u + 1]):
                    v = cols[e]
                    if dist[v] == -1:
                        dist[v] = depth + 1
                        nxt.append(v)
            level = nxt
        frontier = set(level)
        expected_next = set()
        for u in sorted(frontier):
            for e in range(offsets[u], offsets[u + 1]):
                v = cols[e]
                if dist[v] == -1:
                    dist[v] = 3
                    expected_next.add(v)
        base = instance.program.data_objects["next_frontier"].addr
        got_next = {
            i for i in range(N) if machine.memory.load(base + 8 * i) == 1
        }
        assert got_next == expected_next

    def test_cc_adopts_minimum_neighbor_label(self):
        instance = get_workload("cc").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        offsets, cols = csr_graph(N, avg_degree=5, seed=SEED + 11)
        base = instance.program.data_objects["comp"].addr
        for u in range(N):
            neighbors = [cols[e] for e in range(offsets[u], offsets[u + 1])]
            got = machine.memory.load(base + 8 * u)
            # One hook pass: comp[u] ends <= min(u, observed neighbor ids).
            assert got <= u
            assert got >= 0

    def test_pagerank_matches_reference(self):
        instance = get_workload("pagerank").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        offsets, cols = csr_graph(N, avg_degree=6, seed=SEED + 23)
        degrees = [max(offsets[i + 1] - offsets[i], 1) for i in range(N)]
        ranks = uniform_floats(N, SEED, 0.1, 1.0)
        base = instance.program.data_objects["new_rank"].addr
        for u in range(N):
            acc = sum(
                ranks[cols[e]] / degrees[cols[e]]
                for e in range(offsets[u], offsets[u + 1])
            )
            expected = acc * 0.85 + 0.15 / N
            got = machine.memory.load(base + 8 * u)
            assert got == pytest.approx(expected, rel=1e-9)


class TestComputeWorkloads:
    def test_nn_distances_match(self):
        instance = get_workload("nn").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        lats = uniform_floats(N, SEED, 0.0, 90.0)
        lngs = uniform_floats(N, SEED + 1, 0.0, 180.0)
        base = instance.program.data_objects["out"].addr
        for i in range(N):
            expected = math.sqrt(
                (lats[i] - 30.0) ** 2 + (lngs[i] - 60.0) ** 2
            )
            assert machine.memory.load(base + 8 * i) == pytest.approx(
                expected
            )

    def test_streamcluster_assigns_nearest_center(self):
        from repro.workloads.catalog.rodinia import N_CENTERS, N_DIMS

        instance = get_workload("streamcluster").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        pts = gaussian_floats(N * N_DIMS, SEED, 0.0, 3.0)
        ctrs = gaussian_floats(N_CENTERS * N_DIMS, SEED + 1, 0.0, 3.0)
        base = instance.program.data_objects["assign"].addr
        for i in range(N):
            dists = [
                sum(
                    (pts[i * N_DIMS + k] - ctrs[c * N_DIMS + k]) ** 2
                    for k in range(N_DIMS)
                )
                for c in range(N_CENTERS)
            ]
            assert machine.memory.load(base + 8 * i) == dists.index(
                min(dists)
            )

    def test_btree_finds_containing_leaf(self):
        instance = get_workload("btree").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        # Every query must land on a leaf whose key range contains it.
        from repro.workloads.catalog.rodinia import FANOUT, NODE_WORDS

        tree = instance.program.data_objects["tree"].addr
        out = instance.program.data_objects["btree_out"].addr
        queries = uniform_ints(N, SEED + 5, 0, 10_000)
        for i, q in enumerate(queries):
            leaf = machine.memory.load(out + 8 * i)
            node_base = tree + leaf * NODE_WORDS * 8
            is_leaf = machine.memory.load(node_base + 8)
            assert is_leaf == 1, f"query {q} ended on an internal node"

    def test_blackscholes_call_put_parity(self):
        """C - P == S - K*exp(-rT) for matched options (put-call parity)."""
        instance = get_workload("blackscholes").instantiate(N, seed=SEED)
        machine = run_instance(instance)
        spots = uniform_floats(N, SEED, 20.0, 120.0)
        strikes = uniform_floats(N, SEED + 1, 20.0, 120.0)
        times = uniform_floats(N, SEED + 2, 0.1, 2.0)
        types = [v % 2 for v in uniform_ints(N, SEED + 3, 0, 100)]
        out = instance.program.data_objects["bs_out"].addr
        rate = 0.05

        def bs_price(s, k, t, is_put):
            vol = 0.2
            d1 = (math.log(s / k) + (rate + 0.5 * vol * vol) * t) / (
                vol * math.sqrt(t)
            )
            d2 = d1 - vol * math.sqrt(t)

            def cndf(x):
                ax = abs(x)
                kx = 1.0 / (1.0 + 0.2316419 * ax)
                poly = kx * (0.319381530 + kx * (-0.356563782 + kx * (
                    1.781477937 + kx * (-1.821255978 + kx * 1.330274429))))
                nd = 0.3989422804 * math.exp(-0.5 * x * x) * poly
                return nd if x < 0 else 1.0 - nd

            disc = k * math.exp(-rate * t)
            if is_put:
                return disc * (1 - cndf(d2)) - s * (1 - cndf(d1))
            return s * cndf(d1) - disc * cndf(d2)

        for i in range(N):
            expected = bs_price(spots[i], strikes[i], times[i], types[i])
            got = machine.memory.load(out + 8 * i)
            assert got == pytest.approx(expected, rel=1e-6), i

    def test_md5_digests_are_deterministic_and_distinct(self):
        instance = get_workload("md5").instantiate(N, seed=SEED)
        m1 = run_instance(instance)
        m2 = run_instance(get_workload("md5").instantiate(N, seed=SEED))
        d1 = [t.retval for t in m1.threads]
        d2 = [t.retval for t in m2.threads]
        assert d1 == d2
        assert len(set(d1)) > N * 0.9  # distinct messages -> distinct digests
        for digest in d1:
            assert 0 <= digest < (1 << 32)


class TestPigzSemantics:
    def test_token_counts_match_reference_lz77(self):
        from repro.workloads.catalog.other import (
            BLOCK_BYTES,
            MIN_MATCH,
            WINDOW,
        )

        n = 8
        instance = get_workload("pigz").instantiate(n, seed=SEED)
        machine = run_instance(instance)
        data = compressible_bytes(n * BLOCK_BYTES, SEED)

        def reference_tokens(block):
            pos, tokens = 0, 0
            while pos < BLOCK_BYTES:
                best = 0
                start = max(pos - WINDOW, 0)
                for cand in range(start, pos):
                    mlen = 0
                    while (pos + mlen < BLOCK_BYTES
                           and block[cand + mlen] == block[pos + mlen]
                           and mlen < WINDOW):
                        mlen += 1
                    best = max(best, mlen)
                pos += best if best >= MIN_MATCH else 1
                tokens += 1
            return tokens

        for blk in range(n):
            block = data[blk * BLOCK_BYTES:(blk + 1) * BLOCK_BYTES]
            assert machine.threads[blk].retval == reference_tokens(block), blk

    def test_compression_actually_happens(self):
        instance = get_workload("pigz").instantiate(8, seed=SEED)
        machine = run_instance(instance)
        from repro.workloads.catalog.other import BLOCK_BYTES

        for thread in machine.threads:
            assert thread.retval < BLOCK_BYTES  # matches shrank the stream


class TestServiceSemantics:
    def test_memcached_chains_contain_inserted_keys(self):
        instance = get_workload("memcached").instantiate(32, seed=SEED)
        machine = run_instance(instance)
        keys = zipf_ints(32, 128, SEED + 7)
        ops = [1 if k % 4 == 0 else 0
               for k in uniform_ints(32, SEED + 9, 0, 100)]
        heads = instance.program.data_objects["mc_heads"].addr
        inserted = {keys[i] for i in range(32) if ops[i] == 1}
        found = set()
        for bucket in range(64):
            node = machine.memory.load(heads + 8 * bucket)
            while node:
                found.add(machine.memory.load(node))
                node = machine.memory.load(node + 16)
        assert inserted <= found

    def test_uniqueid_ids_are_unique(self):
        instance = get_workload("dsb_uniqueid").instantiate(32, seed=SEED)
        machine = run_instance(instance)
        outs = [v for t in machine.threads for v in t.io_out]
        assert len(outs) == 32
        assert len(set(outs)) == 32

    def test_x264_motion_vectors_match_reference(self):
        from repro.workloads.catalog.parsec import BLOCK, SEARCH_RANGE

        n = 16
        instance = get_workload("x264").instantiate(n, seed=SEED)
        machine = run_instance(instance)
        import random as _random

        cur = uniform_ints(n * BLOCK, SEED, 0, 255)
        r = _random.Random(SEED + 31)
        shift = [r.randrange(SEARCH_RANGE) for _ in range(n)]
        ref = [0] * (n * BLOCK + SEARCH_RANGE + BLOCK)
        for mb in range(n):
            for px in range(BLOCK):
                idx = mb * BLOCK + px + shift[mb]
                if idx < len(ref):
                    noise = r.randrange(6)
                    ref[idx] = cur[mb * BLOCK + px] + noise

        def reference_mv(mb):
            best, best_mv = 1 << 50, 0
            for off in range(SEARCH_RANGE):
                sad = 0
                for px in range(BLOCK):
                    cidx = mb * BLOCK + px
                    sad += abs(cur[cidx] - ref[cidx + off])
                    if sad > best:
                        break
                if sad < best:
                    best, best_mv = sad, off
                if best < 24:
                    break
            return best_mv

        for mb in range(n):
            assert machine.threads[mb].retval == reference_mv(mb), mb
