"""The serving layer (``repro.serve``): the ISSUE 7 contracts.

* **Coalescing** -- N concurrent identical submits share one job id
  and trigger exactly one underlying analysis.
* **Warm fast path** -- a finished fingerprint answers instantly from
  the job registry; across a server restart the artifact store answers
  with zero machine executions.
* **Backpressure** -- a full bounded queue rejects submits with a
  typed 503 (``QueueSaturated``), never by crashing or queueing
  unboundedly.
* **Typed errors** -- 4xx for request mistakes (unknown workload/job,
  malformed bodies, wrong methods), 5xx carrying the
  :class:`~repro.errors.ReproError` type/site/hint for pipeline
  failures.
* **Fault smoke** -- an injected ``io.transient`` storm surfaces as a
  5xx naming its site, never as a wrong report; after the storm the
  same fingerprint analyzes cleanly.

All tests drive a real server over real HTTP (an in-process
:func:`repro.serve.start_in_background` instance).
"""

import http.client
import importlib.util
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.errors import ReproError, RetryExhaustedError, StageTimeoutError
from repro.serve import (
    AnalysisServer,
    JobSpec,
    ServeError,
    error_payload,
    start_in_background,
)
from repro.session import AnalysisSession

_TOOL = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tools", "serve_load.py")
_spec = importlib.util.spec_from_file_location("serve_load", _TOOL)
serve_load = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(serve_load)

WORKLOAD = "vectoradd"
SPEC = {"workload": WORKLOAD, "n_threads": 8}


def _get(url, path):
    try:
        with urllib.request.urlopen(url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url, path, body, raw=None):
    data = raw if raw is not None else json.dumps(body).encode()
    request = urllib.request.Request(
        url + path, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait(url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = _get(url, f"/v1/jobs/{job_id}")
        assert status == 200, doc
        if doc["status"] in ("done", "failed"):
            return doc
        time.sleep(0.01)
    raise AssertionError(f"job {job_id[:12]} never finished")


class GatedSession(AnalysisSession):
    """A session whose ``analyze`` blocks until the test opens a gate.

    Lets tests pin a job in the ``running`` state (to observe
    coalescing and fill the queue) and count underlying analyzer
    invocations.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.analyze_calls = 0

    def analyze(self, *args, **kwargs):
        self.analyze_calls += 1
        assert self.gate.wait(60.0), "test never opened the gate"
        return super().analyze(*args, **kwargs)


@pytest.fixture
def server(tmp_path):
    handle = start_in_background(cache_dir=str(tmp_path / "cache"), jobs=1)
    yield handle
    handle.close()


@pytest.fixture
def gated(tmp_path):
    session = GatedSession(cache_dir=str(tmp_path / "cache"))
    handle = start_in_background(session=session, queue_depth=1)
    yield handle, session
    session.gate.set()
    handle.close()
    session.close()


class TestJobSpec:
    def test_defaults_resolve_against_the_catalog(self):
        spec = JobSpec.parse("analyze", {"workload": WORKLOAD})
        assert spec.n_threads > 0
        assert spec.warp_sizes == (32,)
        assert spec.config().warp_size == 32

    def test_equal_requests_share_one_key(self):
        a = JobSpec.parse("analyze", {"workload": WORKLOAD, "seed": 7})
        b = JobSpec.parse("analyze", {"workload": WORKLOAD})
        assert a.key() == b.key()

    @pytest.mark.parametrize("body,status", [
        ({"workload": "no-such-workload"}, 404),
        ({}, 400),
        ({"workload": WORKLOAD, "n_threads": 0}, 400),
        ({"workload": WORKLOAD, "n_threads": "many"}, 400),
        ({"workload": WORKLOAD, "warp_size": True}, 400),
        ({"workload": WORKLOAD, "opt_level": "O9"}, 400),
        ({"workload": WORKLOAD, "batching": "zigzag"}, 400),
    ])
    def test_validation_maps_to_4xx(self, body, status):
        with pytest.raises(ServeError) as err:
            JobSpec.parse("analyze", body)
        assert err.value.status == status

    def test_sweep_warp_sizes_validated(self):
        with pytest.raises(ServeError):
            JobSpec.parse("sweep", {"workload": WORKLOAD,
                                    "warp_sizes": []})
        spec = JobSpec.parse("sweep", {"workload": WORKLOAD,
                                       "warp_sizes": [8, 16]})
        assert spec.warp_sizes == (8, 16)


class TestErrorPayload:
    def test_repro_error_carries_site_and_hint(self):
        status, body = error_payload(
            ReproError("boom", site="pool.worker", hint="replace it"))
        assert status == 500
        assert body["error"] == {
            "type": "ReproError", "message": "boom",
            "site": "pool.worker", "hint": "replace it",
        }

    def test_stage_timeout_maps_to_504(self):
        status, _body = error_payload(StageTimeoutError("slow"))
        assert status == 504

    def test_site_recovered_from_cause_chain(self):
        try:
            try:
                raise OSError("disk flake")
            except OSError as inner:
                raise RetryExhaustedError("gave up",
                                          hint="rerun") from inner
        except RetryExhaustedError as outer:
            outer.__cause__.site = "io.transient"
            _status, body = error_payload(outer)
        assert body["error"]["site"] == "io.transient"

    def test_serve_error_uses_its_own_status(self):
        status, body = error_payload(
            ServeError(503, "full", kind="QueueSaturated", hint="wait"))
        assert status == 503
        assert body["error"]["type"] == "QueueSaturated"


class TestHttpSurface:
    def test_banner_health_and_catalog(self, server):
        status, banner = _get(server.url, "/")
        assert status == 200
        assert "POST /v1/analyze" in banner["endpoints"]
        status, health = _get(server.url, "/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["queue"]["depth"] >= 1
        status, catalog = _get(server.url, "/v1/workloads")
        assert status == 200
        assert WORKLOAD in {w["name"] for w in catalog["workloads"]}

    def test_analyze_roundtrip_report_and_telemetry(self, server):
        status, doc = _post(server.url, "/v1/analyze", SPEC)
        assert status == 202 and doc["status"] == "queued"
        done = _wait(server.url, doc["job_id"])
        assert done["status"] == "done"
        assert done["executions"] == 1
        assert {s["stage"] for s in done["stages"]} >= {
            "build", "trace", "prepare", "replay"}
        status, report = _get(server.url,
                              f"/v1/jobs/{doc['job_id']}/report")
        assert status == 200
        assert report["report"]["workload"] == WORKLOAD
        assert 0.0 < report["report"]["simt_efficiency"] <= 1.0
        status, tele = _get(server.url,
                            f"/v1/jobs/{doc['job_id']}/telemetry")
        assert status == 200
        assert "session.executions" in tele["telemetry"]["counters"]

    def test_sweep_returns_per_width_reports(self, server):
        status, doc = _post(server.url, "/v1/sweep",
                            dict(SPEC, warp_sizes=[4, 8]))
        assert status == 202
        _wait(server.url, doc["job_id"])
        status, report = _get(server.url,
                              f"/v1/jobs/{doc['job_id']}/report")
        assert status == 200
        assert set(report["reports"]) == {"4", "8"}

    def test_typed_request_errors(self, server):
        status, body = _post(server.url, "/v1/analyze",
                             {"workload": "no-such-workload"})
        assert (status, body["error"]["type"]) == (404, "UnknownWorkload")
        status, body = _post(server.url, "/v1/analyze", None,
                             raw=b"{not json")
        assert (status, body["error"]["type"]) == (400, "BadRequest")
        status, body = _get(server.url, "/v1/jobs/deadbeef")
        assert (status, body["error"]["type"]) == (404, "UnknownJob")
        status, body = _get(server.url, "/v1/nope")
        assert status == 404
        request = urllib.request.Request(
            server.url + "/v1/health", method="DELETE")
        try:
            urllib.request.urlopen(request)
            raise AssertionError("DELETE should be rejected")
        except urllib.error.HTTPError as exc:
            assert exc.code == 405

    def test_registry_warm_resubmit_is_instant(self, server):
        _status, doc = _post(server.url, "/v1/analyze", SPEC)
        _wait(server.url, doc["job_id"])
        t0 = time.perf_counter()
        status, again = _post(server.url, "/v1/analyze", SPEC)
        warm_s = time.perf_counter() - t0
        assert status == 200
        assert again["status"] == "done"
        assert again["job_id"] == doc["job_id"]
        assert warm_s < 1.0
        _status, health = _get(server.url, "/v1/health")
        assert health["requests"]["warm_hits"] >= 1
        assert health["coalesce_hit_rate"] > 0.0


class TestWarmAcrossRestart:
    def test_store_warm_fingerprint_runs_zero_executions(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = start_in_background(cache_dir=cache)
        try:
            _status, doc = _post(first.url, "/v1/analyze", SPEC)
            done = _wait(first.url, doc["job_id"])
            assert done["executions"] == 1
        finally:
            first.close()

        second = start_in_background(cache_dir=cache)
        try:
            status, doc2 = _post(second.url, "/v1/analyze", SPEC)
            assert status == 202
            assert doc2["job_id"] == doc["job_id"]
            assert doc2["warm"] is True
            done = _wait(second.url, doc2["job_id"])
            assert done["status"] == "done"
            assert done["executions"] == 0
            assert second.server.session.executions == 0
        finally:
            second.close()


class TestCoalescing:
    def test_identical_concurrent_submits_run_one_analysis(self, gated):
        handle, session = gated
        clients = 5
        results = [None] * clients
        barrier = threading.Barrier(clients)

        def submit(slot):
            barrier.wait()
            results[slot] = _post(handle.url, "/v1/analyze", SPEC)

        threads = [threading.Thread(target=submit, args=(slot,))
                   for slot in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        job_ids = {doc["job_id"] for _status, doc in results}
        assert len(job_ids) == 1
        coalesced = [doc for _status, doc in results if doc["coalesced"]]
        assert len(coalesced) == clients - 1
        # A coalesced waiter cannot fetch a report early.
        job_id = job_ids.pop()
        status, body = _get(handle.url, f"/v1/jobs/{job_id}/report")
        assert (status, body["error"]["type"]) == (409, "NotFinished")

        session.gate.set()
        done = _wait(handle.url, job_id)
        assert done["status"] == "done"
        assert session.analyze_calls == 1
        assert session.executions == 1

    def test_queue_saturation_returns_typed_503(self, gated):
        handle, session = gated  # queue_depth=1

        _status, first = _post(handle.url, "/v1/analyze", SPEC)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            _s, doc = _get(handle.url, f"/v1/jobs/{first['job_id']}")
            if doc["status"] == "running":
                break
            time.sleep(0.01)
        assert doc["status"] == "running"

        status, second = _post(handle.url, "/v1/analyze",
                               dict(SPEC, seed=11))
        assert status == 202

        status, rejected = _post(handle.url, "/v1/analyze",
                                 dict(SPEC, seed=12))
        assert status == 503
        assert rejected["error"]["type"] == "QueueSaturated"
        assert "queue-depth" in rejected["error"]["hint"]
        _status, health = _get(handle.url, "/v1/health")
        assert health["requests"]["rejected"] == 1

        session.gate.set()
        _wait(handle.url, first["job_id"])
        _wait(handle.url, second["job_id"])
        status, retried = _post(handle.url, "/v1/analyze",
                                dict(SPEC, seed=12))
        assert status == 202
        assert _wait(handle.url, retried["job_id"])["status"] == "done"


class TestFaultSmoke:
    def test_io_transient_storm_fails_typed_then_recovers(self, tmp_path):
        handle = start_in_background(cache_dir=str(tmp_path / "cache"))
        plan = faults.FaultPlan([faults.FaultSpec(
            site="io.transient", kind="raise", at=1, count=100)])
        try:
            faults.install(plan)
            _status, doc = _post(handle.url, "/v1/analyze", SPEC)
            failed = _wait(handle.url, doc["job_id"])
            assert failed["status"] == "failed"
            assert failed["error"]["type"] == "RetryExhaustedError"
            assert failed["error"]["site"] == "io.transient"
            assert failed["error"]["hint"]
            status, body = _get(handle.url,
                                f"/v1/jobs/{doc['job_id']}/report")
            assert status == 500
            assert body["error"]["site"] == "io.transient"
        finally:
            faults.reset()

        # The storm over, the same fingerprint analyzes cleanly: a
        # failed job is replaced, never served as a wrong report.
        _status, retry = _post(handle.url, "/v1/analyze", SPEC)
        assert retry["status"] == "queued"
        done = _wait(handle.url, retry["job_id"])
        assert done["status"] == "done"
        status, body = _get(handle.url,
                            f"/v1/jobs/{retry['job_id']}/report")
        assert status == 200
        assert body["report"]["simt_efficiency"] > 0.0
        handle.close()


class TestEventsStream:
    def test_stream_follows_job_to_completion(self, gated):
        handle, session = gated
        _status, doc = _post(handle.url, "/v1/analyze", SPEC)
        host, port = handle.url.rsplit("//", 1)[1].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=60.0)
        conn.request("GET", f"/v1/jobs/{doc['job_id']}/events")

        def release():
            time.sleep(0.2)
            session.gate.set()

        threading.Thread(target=release).start()
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line)
                 for line in response.read().decode().splitlines()]
        conn.close()
        assert lines, "stream emitted nothing"
        assert lines[-1]["status"] == "done"
        statuses = [snap["status"] for snap in lines]
        assert statuses == sorted(
            statuses, key=["queued", "running", "done"].index)
        assert any(snap["stage"] for snap in lines)


class TestSweepPartials:
    """Sweep jobs stream per-width partial events (inline path too)."""

    def test_partials_stream_in_order_before_the_final_snapshot(
            self, server):
        _status, doc = _post(server.url, "/v1/sweep",
                             dict(SPEC, warp_sizes=[4, 8]))
        host, port = server.url.rsplit("//", 1)[1].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=60.0)
        conn.request("GET", f"/v1/jobs/{doc['job_id']}/events")
        response = conn.getresponse()
        assert response.status == 200
        lines = [json.loads(line)
                 for line in response.read().decode().splitlines()]
        conn.close()
        partials = [line for line in lines
                    if line.get("event") == "partial"]
        assert [p["seq"] for p in partials] == [0, 1]
        assert [p["width"] for p in partials] == [4, 8]
        for partial in partials:
            assert partial["report"]["warp_size"] == partial["width"]
            assert partial["shard"] is None  # inline substrate
        final = lines[-1]
        assert final["status"] == "done"
        assert final["cells"] == {"done": 2, "total": 2}
        assert final["partial_widths"] == [4, 8]
        # Analyze streams carry no partial lines (every line is a
        # snapshot); the partial event is a sweep-only surface.
        _status, doc = _post(server.url, "/v1/analyze", SPEC)
        _wait(server.url, doc["job_id"])
        conn = http.client.HTTPConnection(host, int(port), timeout=60.0)
        conn.request("GET", f"/v1/jobs/{doc['job_id']}/events")
        response = conn.getresponse()
        analyze_lines = [json.loads(line) for line
                         in response.read().decode().splitlines()]
        conn.close()
        assert all("status" in line for line in analyze_lines)

    def test_disconnect_mid_sweep_cleans_up_the_stream(self, gated):
        """Hanging up while partials are still arriving must release
        the handler immediately, and the sweep must still finish."""
        handle, session = gated
        _status, doc = _post(handle.url, "/v1/sweep",
                             dict(SPEC, warp_sizes=[4, 8, 16]))
        host, port = handle.url.rsplit("//", 1)[1].split(":")
        sock = socket.create_connection((host, int(port)), timeout=30.0)
        sock.sendall(f"GET /v1/jobs/{doc['job_id']}/events HTTP/1.1\r\n"
                     f"Host: {host}\r\n\r\n".encode())
        buf = b""
        while b"\r\n\r\n" not in buf or \
                b"\n" not in buf.split(b"\r\n\r\n", 1)[1]:
            chunk = sock.recv(4096)
            assert chunk, "stream closed before the first snapshot"
            buf += chunk
        # Mid-sweep: the job is pinned inside its first gated cell.
        sock.close()

        import asyncio

        def open_streams():
            async def count():
                return sum(
                    1 for task in asyncio.all_tasks()
                    if "_handle_connection" in repr(task.get_coro()))
            return asyncio.run_coroutine_threadsafe(
                count(), handle.server._loop).result(5.0)

        deadline = time.monotonic() + 10.0
        while open_streams() > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert open_streams() == 0, "stream handler outlived its client"

        session.gate.set()
        done = _wait(handle.url, doc["job_id"])
        assert done["status"] == "done"
        assert done["cells"] == {"done": 3, "total": 3}
        # A fresh stream on the finished sweep replays every partial.
        conn = http.client.HTTPConnection(host, int(port), timeout=30.0)
        conn.request("GET", f"/v1/jobs/{doc['job_id']}/events")
        lines = [json.loads(line) for line in
                 conn.getresponse().read().decode().splitlines()]
        conn.close()
        partials = [line for line in lines
                    if line.get("event") == "partial"]
        assert [p["seq"] for p in partials] == [0, 1, 2]
        assert json.loads(json.dumps(lines[-1]))["status"] == "done"


class TestServeLoadTool:
    def test_smoke_run_against_live_server(self, server, tmp_path):
        out = str(tmp_path / "serve_load.json")
        code = serve_load.main(["--url", server.url, "--smoke",
                                "--out", out])
        assert code == 0
        with open(out) as fh:
            metrics = json.load(fh)["serve_load"]
        for key in ("throughput_ips", "cold_p50_s", "warm_p50_s",
                    "coalesce_hit_rate", "burst_analyses"):
            assert key in metrics
        assert metrics["burst_analyses"] <= 1


class TestCli:
    def test_serve_subcommand_is_registered(self):
        from repro import cli

        args = cli._build_parser().parse_args(
            ["serve", "--port", "0", "--queue-depth", "8", "--jobs", "2",
             "--shards", "4"])
        assert args.command == "serve"
        assert args.queue_depth == 8
        assert args.shards == 4
        assert cli._COMMANDS["serve"] is cli._cmd_serve
        # Sharding is opt-in: the default stays on the inline runner.
        assert cli._build_parser().parse_args(
            ["serve", "--port", "0"]).shards == 0

    def test_run_server_prints_parseable_url(self, capsys):
        server = AnalysisServer(cache_dir=None)

        async def boot_and_stop():
            await server.start()
            print(f"SERVE_URL={server.url}", flush=True)
            await server.stop()

        import asyncio
        asyncio.run(boot_and_stop())
        out = capsys.readouterr().out
        assert f"SERVE_URL=http://{server.host}:{server.port}" in out


class TestIndexEndpoints:
    """``GET /v1/index/*``: sqlite answers, never the runner thread."""

    def test_query_reflects_a_finished_analysis(self, server):
        _status, doc = _post(server.url, "/v1/analyze", SPEC)
        _wait(server.url, doc["job_id"])
        status, body = _get(server.url, "/v1/index/query")
        assert status == 200
        assert body["count"] >= 1
        run = body["runs"][0]
        assert run["workload"] == WORKLOAD
        assert 0.0 < run["simt_efficiency"] <= 1.0
        # Filters narrow; a miss is an empty list, not an error.
        status, hit = _get(server.url,
                           f"/v1/index/query?workload={WORKLOAD}")
        assert status == 200 and hit["count"] == body["count"]
        status, miss = _get(server.url,
                            "/v1/index/query?workload=no-such")
        assert status == 200 and miss["count"] == 0

    def test_bad_query_parameters_are_typed_400s(self, server):
        status, body = _get(server.url, "/v1/index/query?nope=1")
        assert (status, body["error"]["type"]) == (400, "BadRequest")
        status, body = _get(server.url, "/v1/index/query?warp_size=wide")
        assert status == 400
        status, body = _get(server.url, "/v1/index/query?counter=%21%21")
        assert status == 400
        assert "predicate" in body["error"]["message"]

    def test_history_contract(self, server):
        status, body = _get(server.url, "/v1/index/history")
        assert (status, body["error"]["type"]) == (400, "BadRequest")
        status, body = _get(server.url, "/v1/index/history?metric=nope")
        assert (status, body["error"]["type"]) == (404, "UnknownMetric")
        assert "ingest" in body["error"]["hint"]

    def test_history_serves_ingested_trajectories(self, server):
        store = server.server.session.store
        for value, name in ((2.0, "a"), (2.4, "b")):
            path = os.path.join(store.root, f"BENCH_{name}.json")
            with open(path, "w") as fh:
                json.dump({"geomean_vector_speedup": value}, fh)
            store.index.ingest_bench(path, label="replay")
        status, body = _get(
            server.url,
            "/v1/index/history?metric=geomean_vector_speedup"
            "&max_regression=10")
        assert status == 200
        assert [p["value"] for p in body["points"]] == [2.0, 2.4]
        assert body["direction"] == 1
        assert body["verdict"]["regressed"] is False

    def test_store_less_server_is_a_typed_409(self):
        handle = start_in_background(cache_dir=None)
        try:
            status, body = _get(handle.url, "/v1/index/query")
            assert (status, body["error"]["type"]) == (409, "NoStore")
            assert "--cache-dir" in body["error"]["hint"]
        finally:
            handle.close()

    def test_query_answers_while_the_runner_is_busy(self, gated):
        """The index read side must not queue behind analyses: with the
        single runner thread pinned inside ``analyze``, index queries
        still answer immediately."""
        handle, session = gated
        _status, doc = _post(handle.url, "/v1/analyze", SPEC)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            _s, snap = _get(handle.url, f"/v1/jobs/{doc['job_id']}")
            if snap["status"] == "running":
                break
            time.sleep(0.01)
        assert snap["status"] == "running"

        t0 = time.perf_counter()
        status, body = _get(handle.url, "/v1/index/query")
        elapsed = time.perf_counter() - t0
        assert status == 200
        assert elapsed < 5.0, "index query queued behind the analysis"

        session.gate.set()
        _wait(handle.url, doc["job_id"])
        status, body = _get(handle.url,
                            f"/v1/index/query?workload={WORKLOAD}")
        assert status == 200 and body["count"] >= 1


class TestIndexWarmAcrossRestart:
    def test_second_server_queries_without_executing(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = start_in_background(cache_dir=cache)
        try:
            _status, doc = _post(first.url, "/v1/analyze", SPEC)
            assert _wait(first.url, doc["job_id"])["status"] == "done"
        finally:
            first.close()

        second = start_in_background(cache_dir=cache)
        try:
            status, body = _get(second.url,
                                f"/v1/index/query?workload={WORKLOAD}")
            assert status == 200
            assert body["count"] >= 1
            assert second.server.session.executions == 0
        finally:
            second.close()


class TestEventsDisconnect:
    def test_client_disconnect_mid_stream_leaves_the_server_healthy(
            self, gated):
        """Dropping an NDJSON events connection mid-job must clean up
        server-side: the job still completes and the listener keeps
        serving."""
        handle, session = gated
        _status, doc = _post(handle.url, "/v1/analyze", SPEC)
        host, port = handle.url.rsplit("//", 1)[1].split(":")
        sock = socket.create_connection((host, int(port)), timeout=30.0)
        sock.sendall(f"GET /v1/jobs/{doc['job_id']}/events HTTP/1.1\r\n"
                     f"Host: {host}\r\n\r\n".encode())
        buf = b""
        while b"\r\n\r\n" not in buf or \
                b"\n" not in buf.split(b"\r\n\r\n", 1)[1]:
            chunk = sock.recv(4096)
            assert chunk, "stream closed before the first snapshot"
            buf += chunk
        assert b"200 OK" in buf
        # One snapshot arrived; now the client vanishes mid-stream.
        sock.close()

        # The handler must notice the hangup and exit while the job is
        # still pinned -- not keep streaming to nobody until the job
        # terminates.
        import asyncio

        def open_streams():
            async def count():
                return sum(
                    1 for task in asyncio.all_tasks()
                    if "_handle_connection" in repr(task.get_coro()))
            return asyncio.run_coroutine_threadsafe(
                count(), handle.server._loop).result(5.0)

        deadline = time.monotonic() + 10.0
        while open_streams() > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert open_streams() == 0, "stream handler outlived its client"

        session.gate.set()
        done = _wait(handle.url, doc["job_id"])
        assert done["status"] == "done"
        status, health = _get(handle.url, "/v1/health")
        assert status == 200 and health["status"] == "ok"
        # A fresh stream on the finished job still works end to end.
        conn = http.client.HTTPConnection(host, int(port), timeout=30.0)
        conn.request("GET", f"/v1/jobs/{doc['job_id']}/events")
        response = conn.getresponse()
        lines = response.read().decode().splitlines()
        conn.close()
        assert json.loads(lines[-1])["status"] == "done"
