"""Detailed unit tests for GPU simulator internals and the CPU model."""

import pytest

from repro.cpusim import CPUConfig, CPUSimulator
from repro.isa import classes
from repro.simulator import (
    CacheConfig,
    GPUConfig,
    GPUSimulator,
    rtx3070,
)
from repro.tracegen import SPACE_GLOBAL, KernelTrace, WarpInstruction

from util import build_loop_program, run_traced

FULL = (1 << 32) - 1


def _kernel(per_warp, n_warps=1, warp_size=32):
    kernel = KernelTrace("k", warp_size)
    for w in range(n_warps):
        stream = kernel.new_warp(warp_size)
        for instr in per_warp(w):
            stream.append(instr)
    return kernel


def _alu(n):
    return [WarpInstruction(0x400000 + 4 * i, classes.INT_ALU, FULL)
            for i in range(n)]


class TestSchedulers:
    def _mem_kernel(self, n_warps):
        def per_warp(w):
            out = []
            for i in range(64):
                if i % 8 == 0:
                    accesses = [(0x1000_0000 + w * 0x8000 + i * 64
                                 + lane * 8, 8) for lane in range(32)]
                    out.append(WarpInstruction(0x400000, classes.LOAD,
                                               FULL, space=SPACE_GLOBAL,
                                               accesses=accesses))
                else:
                    out.append(WarpInstruction(0x400000, classes.INT_ALU,
                                               FULL))
            return out

        return _kernel(per_warp, n_warps=n_warps)

    def test_gto_and_lrr_complete_same_work(self):
        for scheduler in ("gto", "lrr"):
            config = rtx3070()
            config.scheduler = scheduler
            stats = GPUSimulator(config).run(self._mem_kernel(8))
            assert stats.instructions == 8 * 64

    def test_schedulers_differ_in_cycles(self):
        gto = rtx3070()
        lrr = rtx3070()
        lrr.scheduler = "lrr"
        a = GPUSimulator(gto).run(self._mem_kernel(8))
        b = GPUSimulator(lrr).run(self._mem_kernel(8))
        assert a.cycles != b.cycles  # policies genuinely differ

    def test_deterministic(self):
        config = rtx3070()
        a = GPUSimulator(config).run(self._mem_kernel(4))
        b = GPUSimulator(rtx3070()).run(self._mem_kernel(4))
        assert a.cycles == b.cycles
        assert a.l1_misses == b.l1_misses


class TestPlacementAndOccupancy:
    def test_blocks_spread_across_sms(self):
        # 2 blocks of 8 warps on a 2-SM machine: both SMs get work, and
        # the span is far below serial execution of 16 warps on one SM.
        config = GPUConfig(num_sms=2, warps_per_block=8)
        kernel = _kernel(lambda w: _alu(100), n_warps=16)
        stats = GPUSimulator(config).run(kernel)
        assert stats.instructions == 1600
        assert stats.cycles == pytest.approx(800, rel=0.05)

    def test_max_warps_per_sm_respected(self):
        # 16 warps, 1 SM, max 4 resident: still completes all work.
        config = GPUConfig(num_sms=1, max_warps_per_sm=4,
                           warps_per_block=16)
        kernel = _kernel(lambda w: _alu(10), n_warps=16)
        stats = GPUSimulator(config).run(kernel)
        assert stats.instructions == 160

    def test_replication_offsets_defeat_fake_sharing(self):
        def per_warp(w):
            accesses = [(0x1000_0000 + lane * 8, 8) for lane in range(32)]
            return [WarpInstruction(0x400000, classes.LOAD, FULL,
                                    space=SPACE_GLOBAL, accesses=accesses)]

        kernel = _kernel(per_warp, n_warps=1)
        stats = GPUSimulator(rtx3070()).run(kernel, replicate=4)
        # Each replica's window misses independently in L2.
        assert stats.l2_misses == 4 * 8


class TestDramModel:
    def test_bandwidth_shared_across_active_sms(self):
        def per_warp(w):
            out = []
            for i in range(32):
                accesses = [(0x1000_0000 + w * 0x100000 + i * 1024
                             + lane * 256, 8) for lane in range(32)]
                out.append(WarpInstruction(0x400000, classes.LOAD, FULL,
                                           space=SPACE_GLOBAL,
                                           accesses=accesses))
            return out

        config = GPUConfig(num_sms=4, warps_per_block=1,
                           dram_bytes_per_cycle=8.0)
        lone = GPUSimulator(config).run(_kernel(per_warp, n_warps=1))
        many_config = GPUConfig(num_sms=4, warps_per_block=1,
                                dram_bytes_per_cycle=8.0)
        many = GPUSimulator(many_config).run(_kernel(per_warp, n_warps=4))
        # 4 SMs streaming share the bandwidth: per-SM time grows.
        assert many.cycles > lone.cycles

    def test_dram_bytes_counted(self):
        def per_warp(w):
            accesses = [(0x2000_0000 + lane * 32, 8) for lane in range(32)]
            return [WarpInstruction(0x400000, classes.LOAD, FULL,
                                    space=SPACE_GLOBAL, accesses=accesses)]

        stats = GPUSimulator(rtx3070()).run(_kernel(per_warp))
        assert stats.dram_bytes == 32 * 32


class TestLatencyClasses:
    @pytest.mark.parametrize("op_class,heavier", [
        (classes.INT_DIV, classes.INT_ALU),
        (classes.SFU, classes.FP_ALU),
    ])
    def test_expensive_classes_cost_more(self, op_class, heavier):
        def heavy(w):
            return [WarpInstruction(0x400000, op_class, FULL)
                    for _ in range(64)]

        def light(w):
            return [WarpInstruction(0x400000, heavier, FULL)
                    for _ in range(64)]

        config = GPUConfig(num_sms=1)
        slow = GPUSimulator(config).run(_kernel(heavy))
        fast = GPUSimulator(GPUConfig(num_sms=1)).run(_kernel(light))
        assert slow.cycles > fast.cycles

    def test_stats_seconds_uses_clock(self):
        stats = GPUSimulator(GPUConfig(num_sms=1)).run(
            _kernel(lambda w: _alu(100)))
        assert stats.seconds(1.0) == pytest.approx(stats.cycles / 1e9)
        assert stats.seconds(2.0) == pytest.approx(stats.cycles / 2e9)


class TestCPUModelDetails:
    def test_cache_hierarchy_affects_cycles(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [64], None) for _ in range(4)], ["worker"]
        )
        fast = CPUConfig()
        slow = CPUConfig()
        slow.l1 = CacheConfig(64, 1, line_bytes=64, hit_latency=1)  # tiny L1
        slow.dram_latency = 500
        a = CPUSimulator(fast).run(traces, program)
        b = CPUSimulator(slow).run(traces, program)
        assert a.cycles <= b.cycles

    def test_per_core_cycles_reported(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [16], None) for _ in range(6)], ["worker"]
        )
        config = CPUConfig()
        config.cores = 3
        stats = CPUSimulator(config).run(traces, program)
        assert len(stats.per_core_cycles) == 3
        assert max(stats.per_core_cycles) == stats.cycles
        assert all(c > 0 for c in stats.per_core_cycles)

    def test_l1_hit_rate_reported(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [32], None)], ["worker"]
        )
        stats = CPUSimulator().run(traces, program)
        assert 0.0 <= stats.l1_hit_rate <= 1.0
