"""Tests for the content-addressed artifact store."""

import os

import pytest

from repro.artifacts import (
    KIND_DCFGS,
    KIND_REPORT,
    KIND_TRACES,
    ArtifactStore,
    fingerprint_key,
    serialize_traces,
)
from repro.errors import ArtifactCorruptError
from repro.workloads import get_workload, trace_instance

FIELDS = {
    "kind": KIND_TRACES,
    "workload": "vectoradd",
    "n_threads": 16,
    "seed": 7,
    "opt_level": "O1",
    "machine": {},
    "roots": ["worker"],
    "exclude": [],
}


class TestFingerprintKey:
    def test_key_is_stable_across_field_order(self):
        shuffled = dict(reversed(list(FIELDS.items())))
        assert fingerprint_key(FIELDS) == fingerprint_key(shuffled)

    def test_key_changes_with_any_field(self):
        base = fingerprint_key(FIELDS)
        for field, bumped in [("n_threads", 17), ("seed", 8),
                              ("opt_level", "O3"), ("workload", "nn"),
                              ("machine", {"quantum": 16})]:
            assert fingerprint_key(dict(FIELDS, **{field: bumped})) != base

    def test_schema_version_is_folded_in(self, monkeypatch):
        # A schema bump invalidates old entries purely through addressing.
        import repro.artifacts as artifacts

        base = fingerprint_key(FIELDS)
        monkeypatch.setattr(artifacts, "SCHEMA_VERSION", 999)
        assert fingerprint_key(FIELDS) != base


class TestByteInterface:
    def test_miss_then_put_then_hit(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.misses == 1

        store.put_bytes(KIND_REPORT, FIELDS, b"payload")
        assert store.stats.puts == 1
        assert store.stats.bytes_written == len(b"payload")

        assert store.get_bytes(KIND_REPORT, FIELDS) == b"payload"
        assert store.stats.hits == 1
        assert store.stats.bytes_read == len(b"payload")

    def test_distinct_fields_do_not_collide(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_bytes(KIND_REPORT, FIELDS, b"a")
        store.put_bytes(KIND_REPORT, dict(FIELDS, seed=8), b"b")
        assert store.get_bytes(KIND_REPORT, FIELDS) == b"a"
        assert store.get_bytes(KIND_REPORT, dict(FIELDS, seed=8)) == b"b"

    def test_kinds_are_separate_namespaces(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_bytes(KIND_DCFGS, FIELDS, b"tables")
        assert store.get_bytes(KIND_REPORT, FIELDS) is None

    def test_unknown_kind_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(ValueError, match="kind"):
            store.put_bytes("weird", FIELDS, b"x")


class TestTypedHelpers:
    def test_traces_round_trip_through_store(self, tmp_path):
        instance = get_workload("vectoradd").instantiate(16)
        traces, _machine = trace_instance(instance)
        store = ArtifactStore(str(tmp_path))
        store.put_traces(FIELDS, traces)
        loaded = store.get_traces(FIELDS, program=instance.program)
        assert loaded is not None
        assert len(loaded) == len(traces)
        assert serialize_traces(loaded) == serialize_traces(traces)
        assert loaded.program is instance.program

    def test_object_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        payload = {"nested": [1, 2, {"x": (3, 4)}]}
        store.put_object(KIND_DCFGS, FIELDS, payload)
        assert store.get_object(KIND_DCFGS, FIELDS) == payload


class TestIntegrity:
    """Verify-on-read: corrupt entries quarantine and read as misses."""

    def _put(self, tmp_path, data=b"payload"):
        store = ArtifactStore(str(tmp_path / "cache"))
        store.put_bytes(KIND_REPORT, FIELDS, data)
        key = fingerprint_key(FIELDS)
        _dir, payload, meta = store._paths(KIND_REPORT, key)
        return store, payload, meta

    def test_flipped_payload_byte_is_a_miss_and_quarantined(self, tmp_path):
        store, payload, _meta = self._put(tmp_path)
        with open(payload, "r+b") as out:
            out.write(b"X")
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.corrupt == 1
        assert store.stats.misses == 1
        assert store.quarantined()["count"] == 1
        # The broken entry moved aside, so re-put and read back work.
        store.put_bytes(KIND_REPORT, FIELDS, b"payload")
        assert store.get_bytes(KIND_REPORT, FIELDS) == b"payload"

    def test_truncated_meta_is_a_miss_not_a_crash(self, tmp_path):
        store, _payload, meta = self._put(tmp_path)
        with open(meta, "r+b") as out:
            out.truncate(10)
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.corrupt == 1
        assert store.quarantined()["count"] == 1

    def test_unreadable_meta_is_a_miss(self, tmp_path):
        store, _payload, meta = self._put(tmp_path)
        with open(meta, "wb") as out:
            out.write(b"\xff\xfe not json")
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.corrupt == 1

    def test_payload_missing_with_meta_present_is_a_miss(self, tmp_path):
        store, payload, _meta = self._put(tmp_path)
        os.unlink(payload)
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.corrupt == 1

    def test_meta_missing_with_payload_present_is_a_miss(self, tmp_path):
        store, _payload, meta = self._put(tmp_path)
        os.unlink(meta)
        assert not store.has(KIND_REPORT, FIELDS)
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.corrupt == 1

    def test_on_corrupt_raise_is_typed(self, tmp_path):
        store, payload, _meta = self._put(tmp_path)
        with open(payload, "ab") as out:
            out.write(b"tail")
        with pytest.raises(ArtifactCorruptError) as excinfo:
            store.get_bytes(KIND_REPORT, FIELDS, on_corrupt="raise")
        assert "quarantined" in str(excinfo.value)
        assert excinfo.value.hint

    def test_pre_checksum_meta_falls_back_to_size_check(self, tmp_path):
        import json

        store, _payload, meta = self._put(tmp_path)
        with open(meta) as inp:
            record = json.load(inp)
        del record["sha256"]
        with open(meta, "w") as out:
            json.dump(record, out)
        # Size matches: the entry still reads (schema tolerance).
        assert store.get_bytes(KIND_REPORT, FIELDS) == b"payload"
        record["size"] = 3
        with open(meta, "w") as out:
            json.dump(record, out)
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.stats.corrupt == 1

    def test_corrupt_traces_payload_reads_as_miss(self, tmp_path):
        instance = get_workload("vectoradd").instantiate(16)
        traces, _machine = trace_instance(instance)
        store = ArtifactStore(str(tmp_path / "cache"))
        store.put_traces(FIELDS, traces)
        key = fingerprint_key(FIELDS)
        _dir, payload, meta = store._paths(KIND_TRACES, key)
        # Regenerate the meta so the checksum matches the corrupted
        # bytes: decoding (not the byte checksum) must catch this one.
        with open(payload, "r+") as out:
            out.write("X")
        with open(payload, "rb") as inp:
            data = inp.read()
        store.put_bytes(KIND_TRACES, FIELDS, data)
        assert store.get_traces(FIELDS, program=instance.program) is None
        assert store.stats.corrupt == 1
        assert store.quarantined()["count"] == 1

    def test_clear_quarantined(self, tmp_path):
        store, payload, _meta = self._put(tmp_path)
        with open(payload, "r+b") as out:
            out.write(b"X")
        store.get_bytes(KIND_REPORT, FIELDS)
        assert store.info()["quarantined"]["count"] == 1
        assert store.clear_quarantined() == 1
        assert store.quarantined() == {"count": 0, "bytes": 0}


class TestMaintenanceSurface:
    def _seeded(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_bytes(KIND_TRACES, FIELDS, b"t" * 10)
        store.put_bytes(KIND_DCFGS, FIELDS, b"d" * 20)
        store.put_bytes(KIND_REPORT, FIELDS, b"r" * 30)
        store.put_bytes(KIND_REPORT, dict(FIELDS, seed=8), b"r" * 5)
        return store

    def test_entries_and_info(self, tmp_path):
        store = self._seeded(tmp_path)
        entries = store.entries()
        assert len(entries) == 4
        assert {e.kind for e in entries} == set(("traces", "dcfgs", "report"))
        for entry in entries:
            assert entry.fingerprint.get("workload") == "vectoradd"
        info = store.info()
        assert info["entries"] == 4
        assert info["bytes"] == 10 + 20 + 30 + 5
        assert info["by_kind"]["report"]["count"] == 2

    def test_clear_one_kind(self, tmp_path):
        store = self._seeded(tmp_path)
        assert store.clear(kind=KIND_REPORT) == 2
        assert store.get_bytes(KIND_REPORT, FIELDS) is None
        assert store.get_bytes(KIND_TRACES, FIELDS) == b"t" * 10

    def test_clear_everything(self, tmp_path):
        store = self._seeded(tmp_path)
        assert store.clear() == 4
        assert store.entries() == []
        assert store.info()["entries"] == 0

    def test_store_survives_reopen(self, tmp_path):
        self._seeded(tmp_path)
        reopened = ArtifactStore(str(tmp_path))
        assert reopened.get_bytes(KIND_TRACES, FIELDS) == b"t" * 10
        assert len(reopened.entries()) == 4

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = self._seeded(tmp_path)
        leftovers = [
            name
            for _dir, _subdirs, names in os.walk(store.root)
            for name in names if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestMixedSchemaDirectories:
    """``entries()`` over directories holding foreign-schema leftovers.

    A cache dir that outlived a schema bump (or was written by a newer
    release) still lists: well-formed metas of any vintage appear with
    whatever fields they carry, garbage metas are skipped, and the
    order stays deterministic either way.
    """

    def _alien_meta(self, store, relpath, record):
        path = os.path.join(store.root, "objects", relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        import json
        with open(path, "w") as out:
            json.dump(record, out)

    def test_foreign_metas_list_with_defaults(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put_bytes(KIND_TRACES, FIELDS, b"t" * 10)
        # A pre-fingerprint meta (no workload, no kind field).
        self._alien_meta(store, "traces/zz/" + "e" * 16 + ".meta.json",
                        {"key": "e" * 16, "size": 5})
        # A meta from a kind this release has never heard of.
        self._alien_meta(store, "blobs/aa/" + "f" * 16 + ".meta.json",
                        {"kind": "blobs", "key": "f" * 16, "size": 3,
                         "fingerprint": {"workload": "zork"}})
        # Plain garbage is skipped, not fatal.
        self._alien_meta(store, "traces/xx/" + "a" * 16 + ".meta.json", 7)
        raw = os.path.join(store.root, "objects", "traces", "xx",
                           "b" * 16 + ".meta.json")
        with open(raw, "w") as out:
            out.write("{nope")

        entries = store.entries()
        assert len(entries) == 3
        by_key = {e.key: e for e in entries}
        assert by_key["e" * 16].kind == "?"
        assert by_key["e" * 16].fingerprint == {}
        assert by_key["f" * 16].fingerprint["workload"] == "zork"
        # info() totals stay in step with the same listing.
        assert store.info()["entries"] == 3

    def test_order_is_deterministic_and_documented(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        for seed in (9, 3, 7):
            for workload in ("pigz", "vectoradd", "nn"):
                store.put_bytes(
                    KIND_TRACES,
                    dict(FIELDS, workload=workload, seed=seed),
                    b"x")
        store.put_bytes(KIND_REPORT, dict(FIELDS, kind=KIND_REPORT),
                        b"r")
        listed = store.entries()
        expected = sorted(
            listed,
            key=lambda e: (e.kind,
                           str(e.fingerprint.get("workload") or ""),
                           e.key))
        assert listed == expected
        # Stable across a reopen (fresh directory walk).
        assert [e.key for e in ArtifactStore(store.root).entries()] \
            == [e.key for e in listed]
