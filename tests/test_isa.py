"""Unit tests for the ISA layer: opcodes, operands, classification."""

import pytest

from repro.isa import (
    BLOCK_TERMINATORS,
    CONDITIONAL_JUMPS,
    FLOAT_OPS,
    Imm,
    Label,
    Mem,
    Op,
    Reg,
    SP,
    classify,
)
from repro.isa import classes


class TestOpcodes:
    def test_every_opcode_has_a_class(self):
        for op in Op:
            assert classify(op) is not None

    def test_terminators_are_control_or_sync(self):
        for op in BLOCK_TERMINATORS:
            assert classify(op) in (
                classes.BRANCH, classes.CALL, classes.RET, classes.SYNC,
            )

    def test_conditional_jumps_subset_of_terminators(self):
        assert CONDITIONAL_JUMPS <= BLOCK_TERMINATORS

    def test_jmp_is_terminator_but_not_conditional(self):
        assert Op.JMP in BLOCK_TERMINATORS
        assert Op.JMP not in CONDITIONAL_JUMPS

    def test_float_ops_classified_fp_or_sfu(self):
        for op in FLOAT_OPS:
            assert classify(op) in (
                classes.FP_ALU, classes.FP_MUL, classes.FP_DIV, classes.SFU,
            )

    def test_transcendentals_use_sfu(self):
        for op in (Op.FEXP, Op.FLOG, Op.FSIN, Op.FCOS, Op.FSQRT):
            assert classify(op) == classes.SFU

    def test_io_ops_classified_io(self):
        assert classify(Op.IOREAD) == classes.IO
        assert classify(Op.IOWRITE) == classes.IO

    def test_sync_ops_classified_sync(self):
        for op in (Op.LOCK, Op.UNLOCK, Op.XCHG, Op.AADD, Op.BARRIER):
            assert classify(op) == classes.SYNC


class TestOperands:
    def test_reg_equality_and_hash(self):
        assert Reg(3) == Reg(3)
        assert Reg(3) != Reg(4)
        assert hash(Reg(3)) == hash(Reg(3))

    def test_reg_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Reg(-1)

    def test_sp_is_register_zero(self):
        assert SP == Reg(0)

    def test_imm_holds_ints_and_floats(self):
        assert Imm(7).value == 7
        assert Imm(2.5).value == 2.5
        assert Imm(7) == Imm(7)
        assert Imm(7) != Imm(8)

    def test_mem_effective_fields(self):
        m = Mem(Reg(1), disp=16, index=Reg(2), scale=8, size=4)
        assert m.base == Reg(1)
        assert m.disp == 16
        assert m.index == Reg(2)
        assert m.scale == 8
        assert m.size == 4

    def test_mem_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Mem(Reg(1), size=3)

    def test_mem_rejects_non_reg_base(self):
        with pytest.raises(TypeError):
            Mem(5)

    def test_mem_equality(self):
        assert Mem(Reg(1), disp=8) == Mem(Reg(1), disp=8)
        assert Mem(Reg(1), disp=8) != Mem(Reg(1), disp=16)

    def test_label_equality(self):
        assert Label("a") == Label("a")
        assert Label("a") != Label("b")

    def test_reprs_are_informative(self):
        assert "r3" in repr(Reg(3))
        assert "7" in repr(Imm(7))
        assert "r1" in repr(Mem(Reg(1)))
        assert "@foo" in repr(Label("foo"))
