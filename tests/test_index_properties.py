"""Property tests for the result index's core invariant (ISSUE 9):

    for every sequence of store mutations, the incrementally
    maintained index serializes bit-identically to a full rebuild
    from the surviving artifacts.

Hypothesis drives randomized histories of put / re-put / quarantine /
clear over a small universe of synthetic runs; after each history the
two snapshots must match byte for byte, and the query surface must
agree row for row.
"""

import json
import pickle
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.artifacts import (  # noqa: E402
    KIND_REPORT,
    KIND_TELEMETRY,
    KIND_TRACES,
    ArtifactStore,
    fingerprint_key,
)
from repro.index import ResultIndex  # noqa: E402

from test_index import (  # noqa: E402
    FakeMetrics,
    FakeReport,
    report_fields,
)

# A small universe of distinct runs: histories draw (op, slot) pairs
# so quarantines and re-puts collide with earlier puts often.
_WORKLOADS = ("vectoradd", "pigz", "nbody")


def _slot(i):
    """Precomputed (fields, payload) for run slot ``i``."""
    workload = _WORKLOADS[i % len(_WORKLOADS)]
    fields = report_fields(workload=workload, seed=i // len(_WORKLOADS),
                           warp_size=8 << (i % 3))
    report = FakeReport(
        workload=workload,
        warp_size=fields["analyzer"]["warp_size"],
        simt_efficiency=round(0.1 + 0.08 * i, 3),
        metrics=FakeMetrics(
            issues=100 + i,
            divergence_events={("worker", 64): i + 1} if i % 2 else {},
        ),
    )
    telemetry = json.dumps({
        "counters": {"replay.issues": 100 + i},
        "gauges": {"replay.vector_fraction": 0.5},
        "spans": [{"name": "report", "seconds": 0.1 * (i + 1)}],
    }).encode()
    return fields, pickle.dumps(report), telemetry


_SLOTS = [_slot(i) for i in range(6)]

_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["put", "put_tele", "quarantine", "clear_reports",
             "clear_tele", "clear_all", "put_trace"]),
        st.integers(min_value=0, max_value=len(_SLOTS) - 1),
    ),
    min_size=1, max_size=14,
)


def _apply(store, op, slot):
    fields, payload, telemetry = _SLOTS[slot]
    if op == "put":
        store.put_bytes(KIND_REPORT, fields, payload)
    elif op == "put_tele":
        store.put_bytes(KIND_TELEMETRY,
                        dict(fields, kind=KIND_TELEMETRY), telemetry)
    elif op == "put_trace":
        store.put_bytes(KIND_TRACES, dict(fields, kind=KIND_TRACES),
                        b"trace-bytes-%d" % slot)
    elif op == "quarantine":
        store.quarantine(KIND_REPORT, fingerprint_key(fields))
    elif op == "clear_reports":
        store.clear(KIND_REPORT)
    elif op == "clear_tele":
        store.clear(KIND_TELEMETRY)
    elif op == "clear_all":
        store.clear()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(history=_ops)
def test_rebuild_equals_incremental(history):
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        index = store.index  # attach the listener up front
        for op, slot in history:
            _apply(store, op, slot)
        incremental = index.snapshot()
        incremental_rows = index.query()
        index.rebuild()
        assert index.snapshot() == incremental
        assert index.query() == incremental_rows


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(history=_ops)
def test_cold_index_matches_the_hot_one(history):
    """An index attached only *after* the history (a fresh checkout
    hitting an old cache) backfills to the same bytes as one that
    watched every write."""
    with tempfile.TemporaryDirectory() as hot_root, \
            tempfile.TemporaryDirectory() as cold_db:
        store = ArtifactStore(hot_root)
        hot = store.index
        for op, slot in history:
            _apply(store, op, slot)
        cold = ResultIndex(store, path=cold_db + "/index.db")
        cold.rebuild()
        assert cold.snapshot() == hot.snapshot()
