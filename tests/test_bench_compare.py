"""The benchmark regression gate (``tools/bench_compare.py``).

Exercises the three contracts CI leans on:

* direction-aware comparison -- ``_s`` keys are lower-is-better,
  ``_ips``/``speedup``/``hit_rate`` higher-is-better, everything else
  reported but never fatal;
* exit codes -- 0 clean, 1 when a directional metric regresses beyond
  ``--max-regression``, 2 for missing/unreadable/malformed input;
* tolerance of schema drift -- keys present in only one file are
  reported, never fatal;
* metric scoping -- ``--only SUBSTR`` restricts the gate to matching
  keys, which is how CI compares ratio metrics (machine-independent)
  across BENCH files measured on different hardware.
"""

import importlib.util
import json
import os

import pytest

_TOOL = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tools", "bench_compare.py")
_spec = importlib.util.spec_from_file_location("bench_compare", _TOOL)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestFlatten:
    def test_nested_numeric_leaves_get_dotted_keys(self):
        flat = bench_compare.flatten(
            {"a": {"b": 1.5, "c": {"d": 2}}, "e": 3})
        assert flat == {"a.b": 1.5, "a.c.d": 2.0, "e": 3.0}

    def test_non_numeric_and_bool_leaves_are_dropped(self):
        flat = bench_compare.flatten(
            {"mode": "full", "ok": True, "x": 1, "items": [1, 2]})
        assert flat == {"x": 1.0}


class TestDirection:
    @pytest.mark.parametrize("key", [
        "serial_s", "scales.512.jobs.4.shared_warm_s", "attach_s"])
    def test_wall_clock_is_lower_better(self, key):
        assert bench_compare.direction(key) == -1

    @pytest.mark.parametrize("key", [
        "replay_ips", "jobs.4.warm_speedup", "memo.hit_rate"])
    def test_throughput_is_higher_better(self, key):
        assert bench_compare.direction(key) == 1

    @pytest.mark.parametrize("key", ["warp_size", "rounds", "arena_bytes"])
    def test_configuration_echoes_are_neutral(self, key):
        assert bench_compare.direction(key) == 0


class TestCompare:
    def test_slower_wall_clock_regresses(self):
        lines, regressions = bench_compare.compare(
            {"run_s": 1.0}, {"run_s": 1.5}, max_regression=10.0)
        assert len(regressions) == 1
        assert "worse" in regressions[0]

    def test_faster_wall_clock_is_fine(self):
        _lines, regressions = bench_compare.compare(
            {"run_s": 1.0}, {"run_s": 0.5}, max_regression=10.0)
        assert regressions == []

    def test_lower_speedup_regresses(self):
        _lines, regressions = bench_compare.compare(
            {"warm_speedup": 10.0}, {"warm_speedup": 2.0},
            max_regression=10.0)
        assert len(regressions) == 1

    def test_higher_speedup_is_fine(self):
        _lines, regressions = bench_compare.compare(
            {"warm_speedup": 2.0}, {"warm_speedup": 10.0},
            max_regression=10.0)
        assert regressions == []

    def test_threshold_is_respected(self):
        base, cur = {"run_s": 1.0}, {"run_s": 1.05}
        assert bench_compare.compare(base, cur, 10.0)[1] == []
        assert len(bench_compare.compare(base, cur, 1.0)[1]) == 1

    def test_neutral_keys_never_regress(self):
        lines, regressions = bench_compare.compare(
            {"warp_size": 32}, {"warp_size": 64}, max_regression=0.0)
        assert regressions == []
        assert any("changed" in line for line in lines)

    def test_added_and_removed_keys_are_reported_not_fatal(self):
        lines, regressions = bench_compare.compare(
            {"old_s": 1.0}, {"new_s": 1.0}, max_regression=0.0)
        assert regressions == []
        assert any("new" in line for line in lines)
        assert any("removed" in line for line in lines)

    def test_zero_baseline_is_not_scored(self):
        lines, regressions = bench_compare.compare(
            {"run_s": 0.0}, {"run_s": 5.0}, max_regression=10.0)
        assert regressions == []
        assert any("not scored" in line for line in lines)


class TestMainExitCodes:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        path = _write(tmp_path, "a.json", {"run_s": 1.0})
        assert bench_compare.main([path, path]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", {"run_s": 1.0})
        cur = _write(tmp_path, "cur.json", {"run_s": 2.0})
        assert bench_compare.main([base, cur]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_max_regression_flag_tolerates(self, tmp_path):
        base = _write(tmp_path, "base.json", {"run_s": 1.0})
        cur = _write(tmp_path, "cur.json", {"run_s": 2.0})
        assert bench_compare.main(
            [base, cur, "--max-regression", "150"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, "a.json", {"run_s": 1.0})
        missing = str(tmp_path / "nope.json")
        assert bench_compare.main([missing, path]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_json_exits_two(self, tmp_path, capsys):
        good = _write(tmp_path, "good.json", {"run_s": 1.0})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert bench_compare.main([good, str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_quiet_prints_only_verdict(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", {"run_s": 1.0})
        cur = _write(tmp_path, "cur.json", {"run_s": 0.9})
        assert bench_compare.main([base, cur, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "no regressions beyond threshold" in out
        assert "better" not in out

    def test_real_scale_bench_self_compares_clean(self, capsys):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        bench = os.path.join(root, "BENCH_scale.json")
        if not os.path.exists(bench):
            pytest.skip("BENCH_scale.json not generated yet")
        assert bench_compare.main([bench, bench]) == 0
        capsys.readouterr()


class TestOnlyFilter:
    def test_restrict_keeps_matching_keys(self):
        flat = {"a.run_s": 1.0, "a.speedup": 2.0, "b.speedup": 3.0}
        assert bench_compare.restrict(flat, ["speedup"]) == {
            "a.speedup": 2.0, "b.speedup": 3.0}
        assert bench_compare.restrict(flat, None) is flat

    def test_only_scopes_the_gate_to_matching_keys(self, tmp_path):
        # Wall clock regressed badly, the ratio did not: a speedup-only
        # comparison must pass while the unrestricted one fails.
        base = _write(tmp_path, "base.json",
                      {"run_s": 1.0, "speedup": 2.0})
        cur = _write(tmp_path, "cur.json",
                     {"run_s": 3.0, "speedup": 2.0})
        assert bench_compare.main([base, cur]) == 1
        assert bench_compare.main([base, cur, "--only", "speedup"]) == 0

    def test_only_still_catches_matching_regressions(self, tmp_path):
        base = _write(tmp_path, "base.json",
                      {"run_s": 1.0, "speedup": 2.0})
        cur = _write(tmp_path, "cur.json",
                     {"run_s": 1.0, "speedup": 1.0})
        assert bench_compare.main([base, cur, "--only", "speedup"]) == 1

    def test_only_is_repeatable(self, tmp_path):
        base = _write(tmp_path, "base.json",
                      {"run_s": 1.0, "speedup": 2.0, "rate_ips": 10.0})
        cur = _write(tmp_path, "cur.json",
                     {"run_s": 9.0, "speedup": 2.0, "rate_ips": 1.0})
        assert bench_compare.main(
            [base, cur, "--only", "speedup", "--only", "_ips"]) == 1
        assert bench_compare.main([base, cur, "--only", "speedup"]) == 0

    def test_only_filters_list_metrics(self, tmp_path, capsys):
        path = _write(tmp_path, "bench.json", {
            "run_s": 1.25, "speedup": 2.0, "threads": 8})
        assert bench_compare.main(
            ["--list-metrics", path, "--only", "speedup"]) == 0
        out = capsys.readouterr().out
        assert "1 tracked metric(s)" in out
        assert "speedup" in out
        assert "run_s" not in out

    def test_real_replay_bench_self_compares_clean(self, capsys):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        bench = os.path.join(root, "BENCH_replay.json")
        if not os.path.exists(bench):
            pytest.skip("BENCH_replay.json not generated yet")
        assert bench_compare.main(
            [bench, bench, "--only", "speedup"]) == 0
        capsys.readouterr()


class TestListMetrics:
    def test_lists_keys_with_directions(self, tmp_path, capsys):
        path = _write(tmp_path, "bench.json", {
            "run_s": 1.25, "rate_ips": 40.0, "threads": 8})
        assert bench_compare.main(["--list-metrics", path]) == 0
        out = capsys.readouterr().out
        assert "3 tracked metric(s)" in out
        assert "lower-is-better  run_s = 1.25" in out
        assert "higher-is-better rate_ips = 40" in out
        assert "neutral          threads = 8" in out

    def test_accepts_two_files(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", {"run_s": 1.0})
        b = _write(tmp_path, "b.json", {"run_s": 2.0})
        assert bench_compare.main(["--list-metrics", a, b]) == 0
        out = capsys.readouterr().out
        assert out.count("tracked metric(s)") == 2

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.json")
        assert bench_compare.main(["--list-metrics", missing]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_without_files_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            bench_compare.main(["--list-metrics"])
        assert err.value.code == 2
        capsys.readouterr()

    def test_real_serve_bench_lists_clean(self, capsys):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        bench = os.path.join(root, "BENCH_serve.json")
        if not os.path.exists(bench):
            pytest.skip("BENCH_serve.json not generated yet")
        assert bench_compare.main(["--list-metrics", bench]) == 0
        out = capsys.readouterr().out
        assert "serve.throughput_ips" in out
        assert "serve.coalesce_hit_rate" in out
