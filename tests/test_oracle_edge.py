"""Edge-case tests for the GPU oracle and barrier-bearing workers."""

import pytest

from repro.core import analyze_traces
from repro.gpuref import LockstepGPU
from repro.isa import Mem, Op
from repro.program import ProgramBuilder

from util import run_traced


class TestOracleControlFlow:
    def test_float_compare_branches(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            x = f.reg()
            r = f.reg()
            f.emit(Op.CVTIF, x, f.a(0))
            f.emit(Op.FMUL, x, x, 0.4)
            f.if_else(x, ">", 1.0,
                      lambda: f.mov(r, 1), lambda: f.mov(r, 0), fp=True)
            f.ret(r)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=8)
        report = gpu.run_kernel("worker", [[t] for t in range(8)])
        # tids 0..2 -> 0.0,0.4,0.8 <= 1.0; 3.. -> above: mixed => divergent.
        assert report.simt_efficiency < 1.0

    def test_while_loop_with_different_trips(self):
        b = ProgramBuilder()
        with b.function("worker", args=["n"]) as f:
            acc = f.reg()
            f.mov(acc, f.a(0))
            f.while_(lambda: (acc, ">", 1),
                     lambda: f.div(acc, acc, 2))
            f.ret(acc)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=4)
        report = gpu.run_kernel("worker", [[1], [4], [16], [64]])
        assert 0 < report.simt_efficiency < 1.0

    def test_lea_and_stack_frames(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            off = f.stack_alloc(16)
            p = f.reg()
            v = f.reg()
            f.lea(p, f.stack_slot(off + 8))
            f.store(Mem(p), f.a(0))
            f.load(v, f.stack_slot(off + 8))
            f.ret(v)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=4)
        gpu.run_kernel("worker", [[t] for t in range(4)])
        # Lane-private stacks: the stores must not collide.
        metrics = gpu.metrics
        assert metrics.memory["stack"].transactions == 8  # 4 st + 4 ld

    def test_kernel_arity_checked(self):
        b = ProgramBuilder()
        with b.function("worker", args=["a", "b"]) as f:
            f.ret(0)
        program = b.build()
        gpu = LockstepGPU(program, warp_size=2)
        from repro.gpuref import OracleError

        with pytest.raises(OracleError):
            gpu.run_kernel("worker", [[1]])

    def test_io_rejected_in_kernel(self):
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            v = f.reg()
            f.io_read(v)
            f.ret(v)
        program = b.build()
        from repro.gpuref import OracleError

        with pytest.raises(OracleError):
            LockstepGPU(program, warp_size=2).run_kernel(
                "worker", [[0], [1]])


class TestBarriers:
    def _barrier_program(self):
        b = ProgramBuilder()
        stage1 = b.data("stage1", 8 * 32)
        with b.function("worker", args=["tid", "n"]) as f:
            v = f.reg()
            f.mul(v, f.a(0), 3)
            f.store(Mem(None, disp=stage1.value, index=f.a(0), scale=8), v)
            f.barrier(0)
            # Phase 2: read the left neighbor's phase-1 result.
            nb = f.reg()
            t = f.reg()
            f.add(t, f.a(0), 1)
            f.mod(t, t, f.a(1))
            f.load(nb, Mem(None, disp=stage1.value, index=t, scale=8))
            f.ret(nb)
        return b.build()

    def test_barrier_worker_traces_and_replays(self):
        program = self._barrier_program()
        n = 8
        traces, machine = run_traced(
            program, [("worker", [t, n], None) for t in range(n)],
            ["worker"],
        )
        # Machine semantics: each thread sees its neighbor's value.
        assert [t.retval for t in machine.threads] == [
            ((t + 1) % n) * 3 for t in range(n)
        ]
        # The analyzer replays the barrier block like any other block.
        report = analyze_traces(traces, warp_size=n)
        assert report.simt_efficiency == pytest.approx(1.0)
        assert (report.metrics.thread_instructions
                == traces.total_instructions)

    def test_barrier_free_within_oracle_warp(self):
        program = self._barrier_program()
        gpu = LockstepGPU(program, warp_size=8)
        report = gpu.run_kernel("worker", [[t, 8] for t in range(8)])
        # Lock-step warps are implicitly synchronized: full efficiency.
        assert report.simt_efficiency == pytest.approx(1.0)
