"""Tests for the repro.obs observability layer.

Covers the no-op recorder path, span nesting, counter determinism
across forked replay workers, the telemetry.json wire format (round
trip + schema-version rejection), the replay/machine instrumentation
points, the telemetry artifact kind, and the CLI profiling surface.
"""

import json
import os

import pytest

from repro.artifacts import (
    KIND_TELEMETRY,
    KINDS,
    SCHEMA_VERSION,
    ArtifactStore,
)
from repro.cli import main
from repro.core import AnalyzerConfig, ThreadFuserAnalyzer
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Telemetry,
    TelemetryError,
)
from repro.obs import telemetry as telemetry_mod
from repro.session import AnalysisSession

from util import build_diamond_program, build_lock_program, run_traced

N_THREADS = 16


class TestNullRecorder:
    def test_is_disabled_and_stateless(self):
        null = NullRecorder()
        assert null.enabled is False
        with null.span("anything"):
            null.count("x", 5)
            null.gauge("y", 1.0)
            null.maximum("z", 2.0)
        assert null.telemetry().is_empty()

    def test_span_is_one_shared_object(self):
        # The disabled path allocates nothing per probe.
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")

    def test_session_defaults_to_null_recorder(self):
        session = AnalysisSession()
        assert session.obs is NULL_RECORDER
        session.analyze("vectoradd", n_threads=N_THREADS)
        assert session.telemetry().is_empty()

    def test_analyzer_defaults_to_null_recorder(self):
        analyzer = ThreadFuserAnalyzer()
        assert analyzer.obs is NULL_RECORDER
        assert analyzer.telemetry().is_empty()


class TestRecorderSpans:
    def test_spans_nest_by_dynamic_scope(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        with rec.span("other"):
            pass
        t = rec.telemetry()
        assert set(t.spans) == {"outer", "other"}
        outer = t.spans["outer"]
        assert outer.count == 1
        assert set(outer.children) == {"inner"}
        assert outer.children["inner"].count == 2
        assert outer.seconds >= outer.children["inner"].seconds
        assert outer.self_seconds() >= 0.0

    def test_counters_and_gauges(self):
        rec = Recorder()
        rec.count("c")
        rec.count("c", 4)
        rec.gauge("g", 2.0)
        rec.gauge("g", 1.0)
        rec.maximum("m", 3.0)
        rec.maximum("m", 2.0)
        t = rec.telemetry()
        assert t.counters["c"] == 5
        assert t.gauges["g"] == 1.0  # gauge: last write wins
        assert t.gauges["m"] == 3.0  # maximum: high-water mark

    def test_telemetry_snapshot_is_detached(self):
        rec = Recorder()
        with rec.span("stage"):
            rec.count("n", 1)
        snap = rec.telemetry()
        with rec.span("stage"):
            rec.count("n", 1)
        assert snap.counters["n"] == 1
        assert snap.spans["stage"].count == 1


class TestJobsDeterminism:
    def test_counters_identical_jobs1_vs_jobs4(self):
        # 64 threads at warp size 8 -> 8 warps, so jobs=4 really forks.
        config = AnalyzerConfig(warp_size=8)
        t1 = self._run(jobs=1, config=config)
        t4 = self._run(jobs=4, config=config)
        assert t1.counters == t4.counters
        assert t1.counters["replay.warps"] == 8
        # The deterministic gauge (stack depth hwm) must match too.
        assert (t1.gauges["replay.stack_depth_hwm"]
                == t4.gauges["replay.stack_depth_hwm"])

    @staticmethod
    def _run(jobs, config):
        session = AnalysisSession(jobs=jobs, recorder=Recorder())
        session.analyze("dsb_text", n_threads=64, config=config)
        return session.telemetry()

    def test_trace_many_pool_matches_serial(self):
        names = ["vectoradd", "nn"]
        serial = AnalysisSession(jobs=1, recorder=Recorder())
        serial.trace_many(names, n_threads=N_THREADS)
        pooled = AnalysisSession(jobs=2, recorder=Recorder())
        pooled.trace_many(names, n_threads=N_THREADS)
        a = serial.telemetry().counters
        b = pooled.telemetry().counters
        assert a == b
        assert a["machine.instructions"] > 0
        assert a["machine.threads"] == 2 * N_THREADS


class TestTelemetryDocument:
    def test_json_round_trip(self, tmp_path):
        session = AnalysisSession(recorder=Recorder())
        session.analyze("vectoradd", n_threads=N_THREADS)
        doc = session.telemetry()
        path = str(tmp_path / "telemetry.json")
        doc.save(path)
        loaded = Telemetry.load(path)
        assert loaded.counters == doc.counters
        assert loaded.gauges == doc.gauges
        assert set(loaded.spans) == set(doc.spans)
        assert loaded.spans["report"].count == doc.spans["report"].count

    def test_schema_version_is_embedded(self, tmp_path):
        path = str(tmp_path / "telemetry.json")
        Telemetry().save(path)
        with open(path) as inp:
            record = json.load(inp)
        assert record["telemetry_schema"] \
            == telemetry_mod.TELEMETRY_SCHEMA_VERSION

    def test_schema_bump_invalidates(self, tmp_path, monkeypatch):
        path = str(tmp_path / "telemetry.json")
        Telemetry(counters={"n": 1}).save(path)
        monkeypatch.setattr(
            telemetry_mod, "TELEMETRY_SCHEMA_VERSION",
            telemetry_mod.TELEMETRY_SCHEMA_VERSION + 1,
        )
        with pytest.raises(TelemetryError):
            Telemetry.load(path)

    def test_malformed_document_rejected(self):
        with pytest.raises(TelemetryError):
            Telemetry.from_json("not json at all {")
        with pytest.raises(TelemetryError):
            Telemetry.from_json_dict(["not", "a", "dict"])

    def test_merge_semantics(self):
        a = Telemetry(counters={"c": 1}, gauges={"g": 3.0},
                      meta={"who": "a"})
        b = Telemetry(counters={"c": 2, "d": 5}, gauges={"g": 2.0},
                      meta={"who": "b"})
        a.merge(b)
        assert a.counters == {"c": 3, "d": 5}
        assert a.gauges == {"g": 3.0}
        assert a.meta["who"] == "b"


class TestReplayInstrumentation:
    def test_divergence_records_stack_depth_and_reconvergence(self):
        program = build_diamond_program()
        spawns = [("worker", [tid], None) for tid in range(8)]
        traces, _ = run_traced(program, spawns, roots=["worker"])
        rec = Recorder()
        analyzer = ThreadFuserAnalyzer(AnalyzerConfig(warp_size=8),
                                       recorder=rec)
        report = analyzer.analyze(traces)
        t = rec.telemetry()
        # The frame entry plus the divergent if/else entry are live at
        # once, and the divergent entry reconverges at the join.
        assert t.gauges["replay.stack_depth_hwm"] >= 2
        assert t.counters["replay.reconvergence_events"] > 0
        assert t.counters["replay.divergence_events"] > 0
        assert t.counters["replay.issues"] == report.metrics.issues

    def test_lock_serialization_records_entries(self):
        program, _lock_addr, _counter = build_lock_program(shared_lock=True)
        spawns = [("worker", [tid], None) for tid in range(8)]
        traces, _ = run_traced(program, spawns, roots=["worker"])

        def run(lock_reconvergence):
            rec = Recorder()
            ThreadFuserAnalyzer(
                AnalyzerConfig(warp_size=8, emulate_locks=True,
                               lock_reconvergence=lock_reconvergence),
                recorder=rec,
            ).analyze(traces)
            return rec.telemetry().counters

        # "unlock" reconverges right after the common unlock block, so
        # the serialized lanes need no extra stack entries; "exit"
        # defers reconvergence to the frame exit, pushing one entry per
        # serialized lane with a post-critical-section tail.
        unlock = run("unlock")
        assert unlock["replay.lock_contended_events"] > 0
        assert unlock["replay.lock_serialized_issues"] > 0
        assert unlock["replay.lock_serialized_entries"] == 0
        exit_ = run("exit")
        assert exit_["replay.lock_serialized_entries"] > 0

    def test_machine_counters_reach_session_telemetry(self):
        session = AnalysisSession(recorder=Recorder())
        session.trace("vectoradd", n_threads=N_THREADS)
        t = session.telemetry()
        assert t.counters["machine.instructions"] > 0
        assert t.counters["machine.mem_events"] > 0
        assert t.counters["machine.threads"] == N_THREADS
        assert t.counters["trace.executions"] == 1


class TestCacheCounters:
    def test_hits_are_counted_per_stage(self, tmp_path):
        cache = str(tmp_path / "cache")
        warm = AnalysisSession(cache_dir=cache)
        warm.analyze("vectoradd", n_threads=N_THREADS)

        session = AnalysisSession(cache_dir=cache, recorder=Recorder())
        session.analyze("vectoradd", n_threads=N_THREADS)
        t = session.telemetry()
        assert t.counters["report.cache_hits"] == 1
        assert "trace.executions" not in t.counters
        assert t.counters["session.executions"] == 0
        assert t.gauges["cache.hits"] == 1

        session.analyze("vectoradd", n_threads=N_THREADS)
        assert session.telemetry().counters["report.memo_hits"] == 1


class TestTelemetryArtifacts:
    def test_store_telemetry_round_trips(self, tmp_path):
        cache = str(tmp_path / "cache")
        session = AnalysisSession(cache_dir=cache, recorder=Recorder())
        session.analyze("vectoradd", n_threads=N_THREADS)
        fields = session.trace_fields("vectoradd", N_THREADS)
        path = session.store_telemetry(session.telemetry(), fields)
        assert path is not None and os.path.exists(path)
        assert path.endswith(".json")
        loaded = Telemetry.from_json(open(path).read())
        assert loaded.counters["replay.warps"] == 1

    def test_kind_is_known_to_info_even_when_empty(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        info = store.info()
        assert KIND_TELEMETRY in KINDS
        assert info["by_kind"][KIND_TELEMETRY] == {"count": 0, "bytes": 0}
        assert info["disk_schema"] == SCHEMA_VERSION

    def test_old_schema_cache_dir_is_handled_gracefully(self, tmp_path,
                                                        capsys):
        # Fabricate a PR 1-era cache: schema marker v1 plus an entry of
        # a kind this release does not know about.
        root = tmp_path / "cache"
        legacy = root / "objects" / "legacykind" / "ab"
        legacy.mkdir(parents=True)
        (root / "store.json").write_text('{"schema": 1}\n')
        (legacy / "abcd.meta.json").write_text(json.dumps({
            "kind": "legacykind", "key": "abcd", "size": 3,
            "schema": 1, "fingerprint": {"workload": "old"},
        }))
        (legacy / "abcd.bin").write_text("xyz")

        store = ArtifactStore(str(root))
        info = store.info()
        assert info["disk_schema"] == 1
        assert info["by_kind"]["legacykind"]["count"] == 1

        rc = main(["cache", "info", "--cache-dir", str(root)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "legacykind" in out
        assert "disk schema:  v1" in out

        # clear() without a kind sweeps unknown kinds too.
        assert store.clear() == 1
        assert store.entries() == []


class TestCLIProfile:
    def test_analyze_profile_prints_table_and_writes_json(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["analyze", "vectoradd", "--threads", str(N_THREADS),
                   "--no-cache", "--profile", "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SIMT efficiency" in out      # the report still prints
        assert "stage" in out and "replay.warps" in out
        doc = Telemetry.load(str(tmp_path / "telemetry.json"))
        assert doc.counters["replay.warps"] >= 1
        assert doc.meta["workload"] == "vectoradd"

    def test_profile_subcommand(self, tmp_path, capsys):
        out_path = str(tmp_path / "t.json")
        rc = main(["profile", "vectoradd", "--threads", str(N_THREADS),
                   "--no-cache", "--telemetry-out", out_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay.issues" in out
        doc = Telemetry.load(out_path)
        assert doc.meta["command"] == "profile"
        assert doc.counters["trace.executions"] == 1

    def test_profile_stores_telemetry_artifact(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = str(tmp_path / "cache")
        rc = main(["profile", "vectoradd", "--threads", str(N_THREADS),
                   "--cache-dir", cache])
        assert rc == 0
        store = ArtifactStore(cache)
        kinds = {entry.kind for entry in store.entries()}
        assert KIND_TELEMETRY in kinds
        capsys.readouterr()
        rc = main(["cache", "info", "--cache-dir", cache])
        assert rc == 0
        assert "telemetry" in capsys.readouterr().out

    def test_profile_off_writes_nothing(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["analyze", "vectoradd", "--threads", str(N_THREADS),
                   "--no-cache"])
        assert rc == 0
        assert not (tmp_path / "telemetry.json").exists()
