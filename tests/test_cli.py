"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestListCommand:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("nbody", "pigz", "memcached", "hdsearch_mid"):
            assert name in out

    def test_marks_correlation_workloads(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("nbody"))
        assert "yes" in line


class TestAnalyzeCommand:
    def test_basic_report(self, capsys):
        rc = main(["analyze", "vectoradd", "--threads", "16",
                   "--warp-size", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SIMT efficiency" in out
        assert "vectoradd" in out

    def test_lock_emulation_flag(self, capsys):
        rc = main(["analyze", "memcached", "--threads", "16",
                   "--emulate-locks"])
        assert rc == 0
        assert "lock events" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, capsys):
        rc = main(["analyze", "definitely-not-a-workload"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_save_traces(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        rc = main(["analyze", "nn", "--threads", "8",
                   "--save-traces", path])
        assert rc == 0
        assert os.path.exists(path)
        from repro.tracer import load_traces

        traces = load_traces(path)
        assert len(traces) == 8


class TestSpeedupCommand:
    def test_rtx3070_projection(self, capsys):
        rc = main(["speedup", "vectoradd", "--threads", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "projected speedup" in out
        assert "RTX3070" in out

    def test_small_simt_cpu_projection(self, capsys):
        rc = main(["speedup", "freqmine", "--threads", "16",
                   "--gpu", "small-simt-cpu"])
        assert rc == 0
        assert "small-simt-cpu" in capsys.readouterr().out

    def test_launch_threads_override(self, capsys):
        rc = main(["speedup", "nn", "--threads", "16",
                   "--launch-threads", "64"])
        assert rc == 0
        assert "launch threads:    64" in capsys.readouterr().out


class TestTracegenCommand:
    def test_writes_loadable_trace(self, tmp_path, capsys):
        path = str(tmp_path / "k.trace")
        rc = main(["tracegen", "btree", "--threads", "16",
                   "--warp-size", "8", "-o", path])
        assert rc == 0
        from repro.tracegen import load_kernel_trace

        kernel = load_kernel_trace(path)
        assert kernel.warp_size == 8
        assert len(kernel.warps) == 2
        assert kernel.total_issues > 0


class TestSimulateCommand:
    def test_simulate_saved_trace(self, tmp_path, capsys):
        path = str(tmp_path / "k.trace")
        assert main(["tracegen", "md5", "--threads", "16", "-o", path]) == 0
        capsys.readouterr()
        rc = main(["simulate", path, "--replicate", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "SIMT efficiency" in out

    def test_simulate_with_lrr_scheduler(self, tmp_path, capsys):
        path = str(tmp_path / "k.trace")
        main(["tracegen", "nn", "--threads", "16", "-o", path])
        capsys.readouterr()
        rc = main(["simulate", path, "--scheduler", "lrr"])
        assert rc == 0
        assert "lrr" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_prints_monotone_efficiencies(self, capsys):
        rc = main(["sweep", "dsb_text", "--threads", "32",
                   "--warp-sizes", "4,8,16"])
        assert rc == 0
        out = capsys.readouterr().out
        rows = [l.split() for l in out.splitlines()[1:] if l.strip()]
        effs = [float(r[1].rstrip("%")) for r in rows]
        assert effs == sorted(effs, reverse=True)

    def test_sweep_with_lock_emulation(self, capsys):
        rc = main(["sweep", "memcached", "--threads", "16",
                   "--warp-sizes", "8", "--emulate-locks"])
        assert rc == 0


class TestCacheLsCommand:
    def _seed(self, tmp_path):
        from repro.artifacts import (
            KIND_DCFGS, KIND_REPORT, KIND_TRACES, ArtifactStore)

        store = ArtifactStore(str(tmp_path))
        base = {"n_threads": 8, "seed": 7, "opt_level": "O1"}
        # Insertion order deliberately scrambled relative to the
        # (kind, workload, key) contract.
        for kind, workload in (
                (KIND_REPORT, "pigz"), (KIND_TRACES, "vectoradd"),
                (KIND_DCFGS, "nn"), (KIND_TRACES, "nn"),
                (KIND_REPORT, "aes"), (KIND_TRACES, "pigz")):
            store.put_bytes(kind, dict(base, kind=kind,
                                       workload=workload), b"x")
        return store.root

    def test_ls_order_is_kind_then_workload_then_key(
            self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        lines = capsys.readouterr().out.splitlines()
        rows = [line.split() for line in lines[1:] if line.strip()]
        listed = [(row[0], row[1], row[-1]) for row in rows]
        assert len(listed) == 6
        assert listed == sorted(listed)
        # A second invocation prints byte-identical output.
        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        assert capsys.readouterr().out.splitlines() == lines
