"""Tests for the ISA-level standard library (malloc, hash, memcpy)."""

import pytest

from repro.core import analyze_traces
from repro.isa import Mem
from repro.machine import Machine
from repro.program import ProgramBuilder
from repro.workloads.stdlib import N_ARENAS, Stdlib

from util import run_traced


def _lib_program(worker_body):
    """Build a program with the stdlib installed plus a test worker."""
    b = ProgramBuilder()
    lib = Stdlib(b)
    lib.install()
    worker_body(b, lib)
    program = b.build()
    return b, lib, program


class TestMalloc:
    def _program(self):
        def body(b, lib):
            with b.function("worker", args=["size"]) as f:
                p = f.reg()
                f.call(p, "malloc", [f.a(0)])
                f.ret(p)

        return _lib_program(body)

    def test_returns_disjoint_aligned_chunks(self):
        _b, lib, program = self._program()
        machine = Machine(program)
        lib.init_memory(machine, machine.brk_addr)
        for size in (8, 24, 1, 64):
            machine.spawn("worker", [size])
        machine.run()
        ptrs = [t.retval for t in machine.threads]
        assert len(set(ptrs)) == 4
        for p in ptrs:
            assert p % 8 == 0
        # Chunks must not overlap: sorted pointers spaced >= rounded size.
        ordered = sorted(zip(ptrs, (8, 24, 8, 64)))
        for (p1, s1), (p2, _s2) in zip(ordered, ordered[1:]):
            assert p2 >= p1 + s1

    def test_global_lock_serializes_within_warp(self):
        _b, lib, program = self._program()
        traces, _machine = run_traced(
            program, [("worker", [16], None) for _ in range(8)],
            ["worker"],
            setup=lambda m: lib.init_memory(m, m.brk_addr),
        )
        on = analyze_traces(traces, warp_size=8, emulate_locks=True)
        off = analyze_traces(traces, warp_size=8, emulate_locks=False)
        assert on.metrics.locks.contended_events >= 1
        assert on.simt_efficiency < off.simt_efficiency

    def test_brk_advances(self):
        _b, lib, program = self._program()
        machine = Machine(program)
        lib.init_memory(machine, machine.brk_addr)
        start_brk = machine.memory.load(lib.brk_ptr.value)
        machine.spawn("worker", [100])
        machine.run()
        assert machine.memory.load(lib.brk_ptr.value) >= start_brk + 100


class TestMallocFG:
    def _program(self):
        def body(b, lib):
            with b.function("worker", args=["size", "arena"]) as f:
                p = f.reg()
                f.call(p, "malloc_fg", [f.a(0), f.a(1)])
                f.ret(p)

        return _lib_program(body)

    def test_different_arenas_no_lock_events(self):
        _b, lib, program = self._program()
        traces, _machine = run_traced(
            program, [("worker", [32, t], None) for t in range(8)],
            ["worker"],
            setup=lambda m: lib.init_memory(m, m.brk_addr),
        )
        report = analyze_traces(traces, warp_size=8, emulate_locks=True)
        assert report.metrics.locks.lock_events == 0

    def test_arena_wraps_modulo(self):
        _b, lib, program = self._program()
        machine = Machine(program)
        lib.init_memory(machine, machine.brk_addr)
        machine.spawn("worker", [8, 1])
        machine.spawn("worker", [8, 1 + N_ARENAS])  # same arena
        machine.run()
        p1, p2 = (t.retval for t in machine.threads)
        assert abs(p2 - p1) == 8  # bumped within one arena

    def test_distinct_arenas_are_disjoint_regions(self):
        _b, lib, program = self._program()
        machine = Machine(program)
        lib.init_memory(machine, machine.brk_addr)
        machine.spawn("worker", [8, 0])
        machine.spawn("worker", [8, 1])
        machine.run()
        p1, p2 = (t.retval for t in machine.threads)
        assert abs(p2 - p1) >= 1 << 16


class TestHash64:
    def _program(self):
        def body(b, lib):
            with b.function("worker", args=["x"]) as f:
                h = f.reg()
                f.call(h, "hash64", [f.a(0)])
                f.ret(h)

        return _lib_program(body)

    def test_deterministic(self):
        _b, _lib, program = self._program()
        results = []
        for _ in range(2):
            machine = Machine(program)
            machine.spawn("worker", [0xDEADBEEF])
            machine.run()
            results.append(machine.threads[0].retval)
        assert results[0] == results[1]

    def test_outputs_64_bit(self):
        _b, _lib, program = self._program()
        machine = Machine(program)
        for x in (0, 1, 2, 1 << 63):
            machine.spawn("worker", [x])
        machine.run()
        for thread in machine.threads:
            assert 0 <= thread.retval < (1 << 64)

    def test_avalanche(self):
        """Nearby inputs hash far apart (bit-mixing sanity)."""
        _b, _lib, program = self._program()
        machine = Machine(program)
        for x in range(16):
            machine.spawn("worker", [x])
        machine.run()
        hashes = [t.retval for t in machine.threads]
        assert len(set(hashes)) == 16
        assert len({h % 64 for h in hashes}) > 8  # spread across buckets


class TestMemcpy:
    def test_copies_exact_words(self):
        def body(b, lib):
            src = b.data("src", 8 * 16)
            dst = b.data("dst", 8 * 16)
            b._test_addrs = (src.value, dst.value)
            with b.function("worker", args=["n"]) as f:
                f.call(None, "memcpy_words",
                       [dst.value, src.value, f.a(0)])
                f.ret(0)

        b, _lib, program = _lib_program(body)
        src, dst = b._test_addrs
        machine = Machine(program)
        machine.memory.write_words(src, list(range(100, 116)))
        machine.spawn("worker", [10])
        machine.run()
        assert machine.memory.read_words(dst, 10) == list(range(100, 110))
        assert machine.memory.load(dst + 8 * 10) == 0  # not over-copied
