"""The persistent worker pool and shared-memory column arenas.

Covers the :mod:`repro.pool` substrate end to end:

* arena round-trips -- workers rebuild traces zero-copy from the
  shared columns, with content-signature verification intact (a
  corrupted segment is detected, never silently replayed);
* pool lifecycle -- spawn-once reuse across batches, crash respawn,
  per-task timeouts, bug propagation with the remote traceback, clean
  shutdown;
* the parity matrix -- persistent-pool results equal fork-pool and
  serial results (pickled reports *and* telemetry counters) across
  jobs 1/2/4/8, both execution engines, memo on and off;
* the zero-leak guarantee -- after ``AnalysisSession.close()`` no
  arena is live and no ``tfuser-*`` segment remains in ``/dev/shm``;
* the no-silent-fallback contract -- a run that degrades to serial
  replay despite ``jobs>1`` reports a ``pool.fallback`` gauge and a
  one-time ``RuntimeWarning``.
"""

import functools
import gc
import glob
import os
import pickle
import time

import pytest

import repro.pool as pool_mod
from repro import faults
from repro.core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from repro.errors import TraceCorruptError
from repro.faults import FaultPlan, FaultSpec
from repro.obs import Recorder
from repro.session import AnalysisSession
from repro import artifacts
from repro.artifacts import serialize_traces
from repro.tracer.events import TraceSet
from repro.tracer.packed import PackedTrace
from repro.workloads import get_workload, trace_instance

N_THREADS = 48
WARP_SIZE = 16

pytestmark = pytest.mark.skipif(
    not pool_mod.shm_supported(), reason="no usable shared memory here")


@pytest.fixture
def quiet_faults():
    """Mask any environment-wide fault plan (THREADFUSER_FAULTS).

    The white-box tests below drive :class:`WorkerPool` and
    :class:`ColumnArena` directly, below the recovery layer -- an
    ambient injected spawn/unlink fault would surface raw instead of
    being recovered.  Tests that exercise the recovery surfaces
    (analyzer, session) deliberately do NOT use this fixture, so the
    smoke-pool CI job still runs them under injection.
    """
    with faults.injected(None):
        yield


@functools.lru_cache(maxsize=None)
def _traces(name, n_threads=N_THREADS, engine=None):
    instance = get_workload(name).instantiate(n_threads)
    overrides = {} if engine is None else {"engine": engine}
    traces, _ = trace_instance(instance, **overrides)
    return traces


def _fresh_pool():
    """A cold substrate: tears down the process-wide pool and arenas."""
    pool_mod.shutdown()
    return pool_mod.shared_pool()


def _shm_segments():
    return sorted(os.path.basename(path)
                  for path in glob.glob("/dev/shm/tfuser-*"))


# -- arena round-trips ----------------------------------------------------


@pytest.mark.usefixtures("quiet_faults")
class TestColumnArena:
    def test_roundtrip_is_exact_and_zero_copy(self):
        traces = _traces("vectoradd")
        arena = pool_mod.ColumnArena.build(traces)
        try:
            for trace, (index, cpu_tid, root, desc) in zip(
                    traces.threads, arena.descriptors):
                assert (index, cpu_tid, root) == (
                    trace.index, trace.cpu_tid, trace.root)
                rebuilt = PackedTrace.from_shm(desc, arena.shm.buf)
                # Zero-copy: the columns are memoryviews over the
                # segment, not freshly allocated arrays.
                assert isinstance(rebuilt.kinds, memoryview)
                assert rebuilt.to_tokens() == trace.tokens
                # Signature verification still works over shared bytes.
                assert not rebuilt._verified
                rebuilt.ensure_verified()
                assert rebuilt.signature == trace.signature
        finally:
            # Drop the column views before closing the mapping.
            rebuilt = None
            gc.collect()
            arena.close()

    def test_corruption_is_detected(self):
        traces = _traces("vectoradd")
        arena = pool_mod.ColumnArena.build(traces)
        try:
            descriptor = arena.descriptors[0][3]
            _signature, _names, spans = descriptor
            offset, _count = spans[0]
            arena.shm.buf[offset] ^= 0xFF
            rebuilt = PackedTrace.from_shm(descriptor, arena.shm.buf)
            with pytest.raises(TraceCorruptError):
                rebuilt.ensure_verified()
        finally:
            rebuilt = None
            gc.collect()
            arena.close()

    def test_close_unlinks_and_is_idempotent(self):
        traces = _traces("vectoradd")
        arena = pool_mod.arena_for(traces)
        name = arena.name
        assert name in _shm_segments()
        assert arena in pool_mod.live_arenas()
        pool_mod.release_arena(traces)
        assert name not in _shm_segments()
        assert arena not in pool_mod.live_arenas()
        arena.close()  # idempotent
        pool_mod.release_arena(traces)  # idempotent

    def test_arena_is_cached_per_traceset(self):
        traces = _traces("vectoradd")
        arena = pool_mod.arena_for(traces)
        try:
            assert pool_mod.arena_for(traces) is arena
        finally:
            pool_mod.release_arena(traces)

    def test_unlink_failure_defers_to_shutdown(self):
        traces = TraceSet(workload="leaky")
        traces.new_thread(0, "k").tokens = [("B", 0x10, 1, ())]
        traces.new_thread(1, "k").tokens = [("B", 0x10, 1, ())]
        arena = pool_mod.arena_for(traces)
        name = arena.name
        plan = FaultPlan([FaultSpec(site="shm.unlink", kind="raise",
                                    count=999)])
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="deferred"):
                pool_mod._WARNED.discard("shm-unlink-deferred")
                pool_mod.release_arena(traces)
        assert name in pool_mod.leaked_segments()
        assert name in _shm_segments()
        pool_mod.shutdown()  # the reclamation pass
        assert pool_mod.leaked_segments() == []
        assert name not in _shm_segments()


# -- pool lifecycle -------------------------------------------------------


def _echo(payload):
    return ("echo", payload, os.getpid())


def _boom(payload):
    raise ValueError(f"task bug {payload}")


def _transient(payload):
    raise OSError(f"flaky {payload}")


def _die(payload):
    os._exit(86)


def _sleepy(payload):
    time.sleep(payload)
    return payload


@pytest.mark.usefixtures("quiet_faults")
class TestWorkerPool:
    def test_workers_are_reused_across_batches(self):
        pool = _fresh_pool()
        tasks = [(_echo, i, f"t{i}") for i in range(4)]
        first = pool.run_tasks(tasks, jobs=2)
        second = pool.run_tasks(tasks, jobs=2)
        assert [r[1] for r in first] == [0, 1, 2, 3]
        pids = {r[2] for r in first}
        assert pids == {r[2] for r in second}
        assert pool.stats["spawned"] == 2
        assert pool.stats["reused_batches"] >= 1

    def test_dead_worker_is_respawned_and_batch_completes(self):
        pool = _fresh_pool()
        pool.run_tasks([(_echo, i, f"t{i}") for i in range(2)], jobs=2)
        for slot in pool._slots:
            slot.process.terminate()
            slot.process.join(timeout=5)
        out = pool.run_tasks([(_echo, i, f"t{i}") for i in range(2)],
                             jobs=2)
        assert [r[1] for r in out] == [0, 1]

    def test_kill_mid_task_yields_none_not_crash(self):
        pool = _fresh_pool()
        out = pool.run_tasks(
            [(_die, 0, "t0"), (_echo, 1, "t1")], jobs=2)
        assert out[0] is None
        assert out[1][1] == 1
        assert pool.stats["worker_failures"] >= 1
        # The pool stays usable afterwards.
        again = pool.run_tasks([(_echo, 9, "t9")], jobs=1)
        assert again[0][1] == 9

    def test_timeout_is_retryable_not_fatal(self):
        pool = _fresh_pool()
        out = pool.run_tasks([(_sleepy, 30.0, "slow")], jobs=1,
                             stage_timeout=0.3)
        assert out == [None]
        assert pool.stats["worker_failures"] >= 1
        assert pool.run_tasks([(_echo, 1, "t")], jobs=1)[0][1] == 1

    def test_transient_task_error_yields_none(self):
        pool = _fresh_pool()
        out = pool.run_tasks(
            [(_transient, 0, "t0"), (_echo, 1, "t1")], jobs=2)
        assert out[0] is None
        assert out[1][1] == 1

    def test_bug_propagates_with_remote_traceback(self):
        pool = _fresh_pool()
        with pytest.raises(ValueError, match="task bug") as excinfo:
            pool.run_tasks([(_boom, 7, "t7")], jobs=1)
        assert isinstance(excinfo.value.__cause__,
                          pool_mod.RemoteTraceback)
        assert "_boom" in str(excinfo.value.__cause__)

    def test_close_terminates_workers(self):
        pool = _fresh_pool()
        pool.run_tasks([(_echo, 0, "t0")], jobs=1)
        processes = [slot.process for slot in pool._slots
                     if slot.process is not None]
        pool.close()
        assert all(not proc.is_alive() for proc in processes)
        with pytest.raises(OSError):
            pool.run_tasks([(_echo, 0, "t0")], jobs=1)
        # shared_pool() hands out a fresh one after a close/shutdown.
        assert pool_mod.shared_pool() is not pool


# -- the substrate parity matrix -----------------------------------------


def _config(name):
    return AnalyzerConfig(warp_size=WARP_SIZE,
                          emulate_locks=(name == "memcached"))


def _run(name, pool, jobs, memo=True, engine=None):
    recorder = Recorder()
    analyzer = ThreadFuserAnalyzer(_config(name), jobs=jobs,
                                   recorder=recorder, memo=memo,
                                   pool=pool)
    report = analyzer.analyze(_traces(name, engine=engine))
    telemetry = recorder.telemetry()
    return pickle.dumps(report), dict(telemetry.counters)


class TestSubstrateParityMatrix:
    @pytest.mark.parametrize("jobs", [1, 2, 4, 8])
    @pytest.mark.parametrize("memo", [True, False],
                             ids=["memo", "nomemo"])
    @pytest.mark.parametrize("name", ["vectoradd", "memcached"])
    def test_shared_equals_fork_equals_serial(self, name, memo, jobs):
        reference, ref_counters = _run(name, "fork", 1, memo=memo)
        for pool in ("shared", "fork"):
            report, counters = _run(name, pool, jobs, memo=memo)
            assert report == reference, (pool, jobs)
            assert counters == ref_counters, (pool, jobs)

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_engines_are_identical_on_the_shared_pool(self, engine):
        reference, ref_counters = _run("streamcluster", "fork", 1,
                                       engine=engine)
        report, counters = _run("streamcluster", "shared", 4,
                                engine=engine)
        assert report == reference
        assert counters == ref_counters

    @pytest.mark.usefixtures("quiet_faults")
    def test_warm_calls_reuse_workers_and_memo(self):
        pool_mod.shutdown()
        traces = _traces("vectoradd")
        analyzer = ThreadFuserAnalyzer(_config("vectoradd"), jobs=2)
        first = analyzer.analyze(traces)
        second = analyzer.analyze(traces)
        assert pickle.dumps(first) == pickle.dumps(second)
        stats = pool_mod.stats_snapshot()
        assert stats["spawned"] == 2
        assert stats["reused_batches"] >= 1
        # The arena was built once and reused across both calls.
        assert stats["arenas"] == 1
        pool_mod.release_arena(traces)


# -- session integration and the zero-leak guarantee ---------------------


class TestSessionIntegration:
    def test_trace_many_shared_matches_serial(self, tmp_path):
        names = ["vectoradd", "nbody"]
        serial = AnalysisSession(jobs=1)
        expected = {
            name: serialize_traces(traces)
            for name, traces in serial.trace_many(
                names, n_threads=N_THREADS).items()
        }
        with AnalysisSession(jobs=2) as session:
            traced = session.trace_many(names, n_threads=N_THREADS)
            for name in names:
                assert serialize_traces(traced[name]) == expected[name]

    def test_session_close_releases_all_arenas(self):
        if faults.active() is not None:
            pytest.skip("injected shm faults defer unlinks by design")
        pool_mod.shutdown()
        before = _shm_segments()
        session = AnalysisSession(jobs=4)
        report = session.analyze("vectoradd", n_threads=N_THREADS)
        assert report is not None
        session.close()
        assert pool_mod.live_arenas() == []
        assert pool_mod.leaked_segments() == []
        assert _shm_segments() == before
        session.close()  # idempotent

    def test_pool_substrate_is_not_in_fingerprints(self, tmp_path):
        cache = str(tmp_path / "cache")
        shared = AnalysisSession(cache_dir=cache, jobs=2, pool="shared")
        first = shared.analyze("vectoradd", n_threads=N_THREADS)
        fork = AnalysisSession(cache_dir=cache, jobs=2, pool="fork")
        second = fork.analyze("vectoradd", n_threads=N_THREADS)
        assert (artifacts._canonical_pickle(first)
                == artifacts._canonical_pickle(second))
        # The second session served everything from the first's cache.
        assert fork.executions == 0
        shared.close()
        fork.close()

    def test_unknown_substrate_is_rejected(self):
        with pytest.raises(ValueError, match="pool substrate"):
            AnalysisSession(pool="threads")
        with pytest.raises(ValueError, match="pool substrate"):
            ThreadFuserAnalyzer(pool="threads")


# -- fallback visibility --------------------------------------------------


class TestFallbackVisibility:
    def test_serial_fallback_is_gauged_and_warned(self):
        plan = FaultPlan([FaultSpec(site="pool.spawn", kind="raise",
                                    count=999)])
        pool_mod.shutdown()
        pool_mod._WARNED.discard("replay-serial-fallback")
        recorder = Recorder()
        analyzer = ThreadFuserAnalyzer(_config("vectoradd"), jobs=2,
                                       recorder=recorder)
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="serial"):
                report = analyzer.analyze(_traces("vectoradd"))
        gauges = recorder.telemetry().gauges
        assert gauges["pool.fallback"] == 1
        assert gauges["faults.replay_fallbacks"] == 1
        serial = ThreadFuserAnalyzer(_config("vectoradd"), jobs=1)
        assert pickle.dumps(report) == pickle.dumps(
            serial.analyze(_traces("vectoradd")))

    def test_attach_fault_cascades_to_fork_bit_identically(self):
        plan = FaultPlan([FaultSpec(site="pool.attach", kind="raise",
                                    count=999)])
        pool_mod.shutdown()
        recorder = Recorder()
        analyzer = ThreadFuserAnalyzer(_config("vectoradd"), jobs=2,
                                       recorder=recorder)
        with faults.injected(plan):
            report = analyzer.analyze(_traces("vectoradd"))
        assert recorder.telemetry().gauges["pool.shared_fallback"] == 1
        serial = ThreadFuserAnalyzer(_config("vectoradd"), jobs=1)
        assert pickle.dumps(report) == pickle.dumps(
            serial.analyze(_traces("vectoradd")))

    @pytest.mark.usefixtures("quiet_faults")
    def test_pool_gauges_ride_in_session_telemetry(self):
        session = AnalysisSession(jobs=2, recorder=Recorder())
        session.analyze("vectoradd", n_threads=N_THREADS)
        gauges = session.telemetry().gauges
        assert gauges["pool.workers"] >= 1
        assert gauges["pool.batches"] >= 1
        assert "pool.arena_bytes" in gauges
        assert "pool.attach_s" in gauges
        session.close()


# -- observability / CLI surface -----------------------------------------


@pytest.mark.usefixtures("quiet_faults")
class TestProbeInfo:
    def test_probe_reports_reuse_and_attach_stats(self):
        pool_mod.shutdown()
        info = pool_mod.probe_info(jobs=2)
        assert info["shm_supported"] is True
        assert info["spawned"] == 2
        assert info["batches"] == 2
        assert info["reused_batches"] >= 1
        assert info["attaches"] >= 1
        assert info["arenas"] == 0  # the probe arena was released
        assert len(info["ping_pids"]) == 2

    def test_no_probe_is_passive(self):
        pool_mod.shutdown()
        info = pool_mod.probe_info(probe=False)
        assert "ping_pids" not in info
        assert "spawned" not in info  # no pool was spun up
        assert info["arenas"] == 0
