"""The vector backend shim: selection, fallback, parity, telemetry.

:mod:`repro.core.vector` hosts the bulk column primitives behind
:class:`~repro.core.replay.VectorWarpReplayer` twice -- a pure
``array``-slicing reference and an optional numpy accelerator -- and
promises the choice is observationally invisible.  These tests pin that
promise down at every layer: the primitives agree element-for-element
on randomized columns, ``use_backend`` forces and restores the pure
path, a monkeypatched ``import numpy`` failure degrades to the
``array`` backend with bit-identical reports (the ``accel`` extra is
genuinely optional), the ``replay.vector_*`` gauges surface utilization
without ever touching counters, and the vectorized replayer raises the
exact same :class:`~repro.core.ReplayError` as the packed oracle on
corrupt streams.
"""

import array
import builtins
import functools
import importlib
import pickle
import random

import pytest

from repro.core import (
    AnalyzerConfig,
    PackedWarpReplayer,
    ReplayError,
    ThreadFuserAnalyzer,
    VectorWarpReplayer,
    build_dcfgs,
    compute_all_ipdoms,
)
from repro.core import vector
from repro.obs import Recorder
from repro.tracer.events import TOK_BLOCK, TraceSet
from repro.workloads import get_workload, trace_instance

N_THREADS = 32
WARP_SIZE = 8

STACK_BASE = 0x7000_0000

needs_numpy = pytest.mark.skipif(
    "numpy" not in vector._BACKENDS,
    reason="numpy accelerator not installed")


@functools.lru_cache(maxsize=None)
def _traces():
    traces, _ = trace_instance(get_workload("vectoradd").instantiate(
        N_THREADS))
    return traces


def _analyze(vector_knob=True, recorder=None, jobs=1):
    analyzer = ThreadFuserAnalyzer(AnalyzerConfig(warp_size=WARP_SIZE),
                                   jobs=jobs, recorder=recorder,
                                   memo=False, packed=True,
                                   vector=vector_knob)
    return analyzer.analyze(_traces())


# -- primitive parity on randomized columns -------------------------------


@needs_numpy
class TestBackendPrimitiveParity:
    def test_first_index(self):
        rng = random.Random(7)
        col = array.array("q", [rng.randrange(6) for _ in range(300)])
        for lo, hi in ((0, 300), (5, 40), (120, 300), (17, 18), (9, 9)):
            for value in range(-1, 7):
                assert (vector._first_index_np(col, lo, hi, value)
                        == vector._first_index_py(col, lo, hi, value))

    def test_first_index_on_memoryview_columns(self):
        # Shared-memory arenas hand the primitives memoryview casts,
        # which lack ``array.index`` -- the pure loop fallback and the
        # numpy view must still agree.
        col = array.array("q", [3, 1, 4, 1, 5, 9, 2, 6] * 20)
        view = memoryview(col)
        for value in (1, 9, 7):
            assert (vector._first_index_py(view, 0, len(col), value)
                    == vector._first_index_np(view, 0, len(col), value))

    def test_prefix_len(self):
        rng = random.Random(11)
        a = array.array("q", [rng.randrange(50) for _ in range(400)])
        for d in (0, 1, 63, 64, 200, 399):
            b = array.array("q", a)
            b[d] ^= 1
            for k in (1, 2, 63, 64, 128, 400):
                expect = min(d, k)
                assert vector._prefix_len_py(a, 0, b, 0, k) == expect
                assert vector._prefix_len_np(a, 0, b, 0, k) == expect
        b = array.array("q", a)
        assert vector._prefix_len_py(a, 0, b, 0, 400) == 400
        assert vector._prefix_len_np(a, 0, b, 0, 400) == 400
        # Offset slices compare windows, not whole columns.
        assert vector._prefix_len_py(a, 100, a, 100, 200) == 200
        assert vector._prefix_len_np(a, 100, a, 100, 200) == 200

    def test_span_stats(self):
        rng = random.Random(23)
        n_lanes, nrec = 5, 96
        fcols, lcols, los = [], [], []
        base_lo = 7
        for k in range(n_lanes):
            lo = base_lo + 3 * k
            los.append(lo)
            f = array.array("q", [0] * (lo + nrec + 5))
            last = array.array("q", f)
            for i in range(nrec):
                seg = rng.randrange(1 << 20)
                f[lo + i] = seg
                last[lo + i] = seg + rng.choice((0, 0, 0, 1, 2))
            fcols.append(f)
            lcols.append(last)
        maddr = array.array("q", [0] * (base_lo + nrec))
        for i in range(nrec):
            maddr[base_lo + i] = rng.choice(
                (0x2000 + 32 * i, STACK_BASE + 64 * i))
        assert (vector._span_stats_np(fcols, lcols, los, maddr, nrec,
                                      STACK_BASE)
                == vector._span_stats_py(fcols, lcols, los, maddr, nrec,
                                         STACK_BASE))
        # All-single-segment accesses take the sorted-column fast path.
        assert (vector._span_stats_np(fcols, fcols, los, maddr, nrec,
                                      STACK_BASE)
                == vector._span_stats_py(fcols, fcols, los, maddr, nrec,
                                         STACK_BASE))
        # Short spans delegate to the pure implementation outright.
        assert (vector._span_stats_np(fcols, lcols, los, maddr, 3,
                                      STACK_BASE)
                == vector._span_stats_py(fcols, lcols, los, maddr, 3,
                                         STACK_BASE))

    def test_solo_span_stats(self):
        rng = random.Random(31)
        n = 200
        msegf, msegl, maddr = (array.array("q") for _ in range(3))
        for _ in range(n):
            seg = rng.randrange(1 << 16)
            msegf.append(seg)
            msegl.append(seg + rng.randrange(3))
            maddr.append(rng.choice((0x1000, STACK_BASE + 0x100)))
        for lo, hi in ((0, n), (3, 9), (50, 180)):
            assert (vector._solo_span_stats_np(maddr, msegf, msegl, lo, hi,
                                               STACK_BASE)
                    == vector._solo_span_stats_py(maddr, msegf, msegl, lo,
                                                  hi, STACK_BASE))


# -- backend selection ----------------------------------------------------


class TestBackendSelection:
    def test_auto_prefers_numpy_when_importable(self):
        have_numpy = "numpy" in vector._BACKENDS
        try:
            picked = vector.use_backend("auto")
        finally:
            vector.use_backend()
        assert picked == ("numpy" if have_numpy else "array")
        assert vector.numpy_active() == have_numpy

    def test_unknown_backend_is_a_value_error(self):
        before = vector.BACKEND
        with pytest.raises(ValueError, match="available"):
            vector.use_backend("cuda")
        # A failed selection never clobbers the active backend.
        assert vector.BACKEND == before

    def test_forced_array_backend_is_bit_identical(self):
        reference = pickle.dumps(_analyze())
        try:
            assert vector.use_backend("array") == "array"
            assert not vector.numpy_active()
            forced = pickle.dumps(_analyze())
        finally:
            vector.use_backend()
        assert forced == reference


class TestNoNumpyFallback:
    def test_missing_numpy_degrades_to_array_backend(self):
        """A failed ``import numpy`` must be invisible in the report."""
        reference = pickle.dumps(_analyze())
        real_import = builtins.__import__

        def _no_numpy(name, *args, **kwargs):
            if name == "numpy" or name.startswith("numpy."):
                raise ImportError("numpy disabled for test")
            return real_import(name, *args, **kwargs)

        try:
            builtins.__import__ = _no_numpy
            importlib.reload(vector)
            assert vector.BACKEND == "array"
            assert not vector.numpy_active()
            assert "numpy" not in vector._BACKENDS
            fallback = pickle.dumps(_analyze())
        finally:
            builtins.__import__ = real_import
            importlib.reload(vector)
        assert fallback == reference


# -- synthetic warps: bulk-path coverage and error parity -----------------


def _converged_traces(n_threads=8, n_tokens=64):
    """Identical lanes: the whole stream is one converged bulk span."""
    tokens = []
    for i in range(n_tokens):
        mems = (((0, i % 2 == 0, 0x2000 + 32 * i, 8),)
                if i % 3 == 0 else ())
        tokens.append((TOK_BLOCK, 0x100 + 8 * i, 2, mems))
    traces = TraceSet(workload="vector_synth")
    for tid in range(n_threads):
        traces.new_thread(tid, "worker").tokens = list(tokens)
    return traces


def _prepared(traces):
    dcfgs = build_dcfgs(traces)
    compute_all_ipdoms(dcfgs)
    return dcfgs


class TestVectorReplayer:
    def test_converged_stream_is_consumed_entirely_in_bulk(self):
        traces = _converged_traces()
        dcfgs = _prepared(traces)
        vec = VectorWarpReplayer(traces.threads, dcfgs, 8)
        vec.run()
        assert vec.total_tokens > 0
        assert vec.vector_tokens == vec.total_tokens
        packed = PackedWarpReplayer(traces.threads, dcfgs, 8)
        packed.run()
        assert pickle.dumps(vec.metrics) == pickle.dumps(packed.metrics)

    def test_misaligned_records_raise_the_oracle_error(self):
        # Lanes agree on a long record-free prefix (entering the bulk
        # path), then lane 1 misses lane 0's memory record: the vector
        # replayer must shrink to the agreeing prefix and surface the
        # packed oracle's exact misalignment error.
        prefix = [(TOK_BLOCK, 0x100 + 8 * i, 1, ()) for i in range(12)]
        tail = [(TOK_BLOCK, 0x300, 1, ())]
        with_rec = prefix + [(TOK_BLOCK, 0x200, 1,
                              ((0, True, 0x2000, 8),))] + tail
        without_rec = prefix + [(TOK_BLOCK, 0x200, 1, ())] + tail
        traces = TraceSet(workload="vector_err")
        traces.new_thread(0, "worker").tokens = with_rec
        traces.new_thread(1, "worker").tokens = without_rec
        dcfgs = _prepared(traces)
        with pytest.raises(ReplayError) as packed_err:
            PackedWarpReplayer(traces.threads, dcfgs, 2).run()
        with pytest.raises(ReplayError) as vector_err:
            VectorWarpReplayer(traces.threads, dcfgs, 2).run()
        assert str(vector_err.value) == str(packed_err.value)
        assert "misaligned" in str(packed_err.value)


# -- telemetry and CLI surfaces -------------------------------------------


class TestVectorTelemetry:
    def test_vector_gauges_are_emitted(self):
        recorder = Recorder()
        analyzer = ThreadFuserAnalyzer(AnalyzerConfig(warp_size=WARP_SIZE),
                                       recorder=recorder, memo=False)
        analyzer.analyze(_converged_traces(n_threads=16))
        gauges = recorder.telemetry().gauges
        assert gauges["replay.vector_tokens"] > 0
        assert (gauges["replay.vector_total_tokens"]
                >= gauges["replay.vector_tokens"])
        assert gauges["replay.vector_token_fraction"] == 1.0
        assert gauges["replay.vector_backend_numpy"] == (
            1 if vector.numpy_active() else 0)

    def test_no_vector_gauges_when_disabled(self):
        recorder = Recorder()
        _analyze(vector_knob=False, recorder=recorder)
        gauges = recorder.telemetry().gauges
        assert not any(name.startswith("replay.vector")
                       for name in gauges)

    def test_sharded_replay_aggregates_the_gauges(self):
        recorder = Recorder()
        _analyze(recorder=recorder, jobs=2)
        gauges = recorder.telemetry().gauges
        assert 0.0 <= gauges["replay.vector_token_fraction"] <= 1.0
        assert (gauges["replay.vector_total_tokens"]
                >= gauges["replay.vector_tokens"])


class TestCLISurface:
    def test_analyze_accepts_no_vector(self, capsys):
        from repro.cli import main

        rc = main(["analyze", "vectoradd", "--threads", "16",
                   "--warp-size", "8", "--no-vector"])
        assert rc == 0
        assert "SIMT efficiency" in capsys.readouterr().out

    def test_pool_info_reports_the_vector_backend(self, capsys):
        from repro.cli import main

        rc = main(["pool", "info", "--no-probe"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vector backend:" in out
        assert vector.BACKEND in out
