"""Edge-case tests for the MIMD machine and tracer interaction."""

import pytest

from repro.isa import Mem, Op
from repro.machine import DeadlockError, Machine, MachineError
from repro.program import ProgramBuilder
from repro.tracer import TOK_BLOCK, TOK_LOCK, TraceRecorder

from util import run_traced


class TestSchedulingEdge:
    def test_quantum_one_interleaves_finely(self):
        b = ProgramBuilder()
        d = b.data("order", 8 * 64)
        idx = b.data("idx", 8)
        with b.function("worker", args=["tid"]) as f:
            i = f.reg()
            slot = f.reg()

            def body():
                f.atomic_add(slot, Mem(None, disp=idx.value), 1)
                f.store(Mem(None, disp=d.value, index=slot, scale=8),
                        f.a(0))

            f.for_range(i, 0, 4, body)
            f.ret(0)
        program = b.build()
        machine = Machine(program, quantum=1)
        machine.spawn("worker", [1])
        machine.spawn("worker", [2])
        machine.run()
        order = machine.memory.read_words(d.value, 8)
        # With quantum=1 the two threads interleave rather than running
        # back-to-back.
        assert order.count(1) == 4 and order.count(2) == 4
        assert order != [1, 1, 1, 1, 2, 2, 2, 2]

    def test_large_quantum_runs_thread_to_stall(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            i = f.reg()
            f.for_range(i, 0, 10, f.nop)
            f.ret(0)
        program = b.build()
        machine = Machine(program, quantum=10_000)
        machine.spawn("worker", [0])
        machine.spawn("worker", [1])
        machine.run()
        assert all(t.state == "done" for t in machine.threads)


class TestLockEdge:
    def test_two_lock_deadlock_detected(self):
        b = ProgramBuilder()
        la = b.data("la", 8)
        lb = b.data("lb", 8)
        with b.function("ab", args=[]) as f:
            f.lock(la)
            f.barrier(0)  # both threads hold their first lock
            f.lock(lb)
            f.unlock(lb)
            f.unlock(la)
            f.ret(0)
        with b.function("ba", args=[]) as f:
            f.lock(lb)
            f.barrier(0)
            f.lock(la)
            f.unlock(la)
            f.unlock(lb)
            f.ret(0)
        program = b.build()
        machine = Machine(program)
        machine.spawn("ab", [])
        machine.spawn("ba", [])
        with pytest.raises(DeadlockError):
            machine.run()

    def test_lock_handoff_across_many_threads(self):
        b = ProgramBuilder()
        lk = b.data("lk", 8)
        token = b.data("token", 8)
        with b.function("worker", args=["tid"]) as f:
            v = f.reg()
            f.lock(lk)
            f.load(v, Mem(None, disp=token.value))
            f.add(v, v, 1)
            f.store(Mem(None, disp=token.value), v)
            f.unlock(lk)
            f.ret(v)
        program = b.build()
        machine = Machine(program, quantum=2)
        for t in range(20):
            machine.spawn("worker", [t])
        machine.run()
        # Every thread saw a unique token value: perfect mutual exclusion.
        values = sorted(t.retval for t in machine.threads)
        assert values == list(range(1, 21))

    def test_lock_addr_from_register(self):
        b = ProgramBuilder()
        locks = b.data("locks", 8 * 4)
        with b.function("worker", args=["which"]) as f:
            a = f.reg()
            f.mul(a, f.a(0), 8)
            f.add(a, a, locks.value)
            f.lock(a)
            f.unlock(a)
            f.ret(0)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t % 4], None) for t in range(8)],
            ["worker"],
        )
        lock_addrs = {
            tok[1] for tr in traces for tok in tr.tokens
            if tok[0] == TOK_LOCK
        }
        assert len(lock_addrs) == 4


class TestTracerEdge:
    def test_root_called_from_another_root(self):
        """A nested call to a root function is a plain call, not a new
        logical thread."""
        b = ProgramBuilder()
        with b.function("handle", args=["depth"]) as f:
            r = f.reg()
            f.mov(r, f.a(0))

            def recurse():
                t = f.reg()
                f.sub(t, f.a(0), 1)
                f.call(r, "handle", [t])

            f.if_then(f.a(0), ">", 0, recurse)
            f.ret(r)
        program = b.build()
        traces, _m = run_traced(
            program, [("handle", [3], None)], ["handle"]
        )
        assert len(traces) == 1  # one logical thread despite recursion

    def test_multiple_roots_in_one_program(self):
        b = ProgramBuilder()
        with b.function("get", args=["k"]) as f:
            f.ret(f.a(0))
        with b.function("put", args=["k"]) as f:
            r = f.reg()
            f.mul(r, f.a(0), 2)
            f.ret(r)
        with b.function("server", args=["n"]) as f:
            i = f.reg()
            r = f.reg()
            m = f.reg()

            def body():
                f.mod(m, i, 2)
                f.if_else(m, "==", 0,
                          lambda: f.call(r, "get", [i]),
                          lambda: f.call(r, "put", [i]))

            f.for_range(i, 0, f.a(0), body)
            f.ret(0)
        program = b.build()
        traces, _m = run_traced(
            program, [("server", [6], None)], ["get", "put"]
        )
        assert len(traces) == 6
        assert {t.root for t in traces} == {"get", "put"}
        # Warp formation keeps roots separate.
        from repro.core import form_warps

        warps = form_warps(traces, warp_size=4)
        for warp in warps:
            assert len({t.root for t in warp}) == 1

    def test_trace_block_counts_sum_to_machine_count(self):
        from util import build_call_program

        program = build_call_program()
        recorder = TraceRecorder(roots=["worker"], program=program)
        machine = Machine(program, hooks=recorder)
        for t in range(4):
            machine.spawn("worker", [t])
        machine.run()
        traced = sum(t.n_instructions for t in recorder.traces)
        executed = sum(t.instructions_executed for t in machine.threads)
        assert traced == executed

    def test_unclosed_trace_flushes_on_thread_end(self):
        b = ProgramBuilder()
        with b.function("worker", args=[]) as f:
            f.nop()
            f.halt()
        program = b.build()
        traces, _m = run_traced(program, [("worker", [], None)], ["worker"])
        assert traces.threads[0].closed
        assert traces.threads[0].n_instructions == 2


class TestProgramValidationEdge:
    def test_empty_function_rejected_at_link(self):
        from repro.program import Function, Program

        program = Program()
        program.add_function(Function("empty", 0))
        with pytest.raises(ValueError):
            program.link()

    def test_write_to_immediate_rejected(self):
        from repro.program import Program
        from repro.program.ir import BasicBlock, Function, Instruction
        from repro.isa import Imm, Reg

        program = Program()
        fn = Function("bad", 0)
        block = BasicBlock("entry")
        block.append(Instruction(Op.MOV, (Imm(1), Imm(2))))
        block.append(Instruction(Op.RET, ()))
        fn.add_block(block)
        program.add_function(fn)
        program.link()
        machine = Machine(program)
        machine.spawn("bad", [])
        with pytest.raises(MachineError):
            machine.run()
