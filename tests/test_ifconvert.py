"""Unit tests for the if-conversion pass and straight-line block merging."""

import pytest

from repro.isa import Mem, Op
from repro.machine import Machine
from repro.optlevels import clone_program, if_convert, merge_straightline_blocks
from repro.program import ProgramBuilder


def _run(program, fn, args):
    machine = Machine(program)
    machine.spawn(fn, args)
    machine.run()
    return machine.threads[0].retval


def _count_branches(program):
    from repro.isa import CONDITIONAL_JUMPS

    return sum(
        1
        for f in program.functions.values()
        for blk in f.blocks
        for i in blk.instructions
        if i.op in CONDITIONAL_JUMPS
    )


class TestIfConversion:
    def _simple_if(self):
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 10)
            f.if_then(f.a(0), ">", 5, lambda: f.mov(r, 99))
            f.add(r, r, 1)
            f.ret(r)
        return b.build()

    def test_converts_simple_diamond(self):
        program = self._simple_if()
        clone = clone_program(program)
        assert if_convert(clone) == 1
        clone.link()
        assert _count_branches(clone) < _count_branches(program)

    @pytest.mark.parametrize("x,expected", [(3, 11), (7, 100)])
    def test_semantics_preserved(self, x, expected):
        program = self._simple_if()
        clone = clone_program(program)
        if_convert(clone)
        merge_straightline_blocks(clone)
        clone.link()
        assert _run(program, "worker", [x]) == expected
        assert _run(clone, "worker", [x]) == expected

    def test_multi_instruction_body_with_dependencies(self):
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            s = f.reg()
            f.mov(r, 2)
            f.mov(s, 3)

            def body():
                f.mov(r, 7)
                f.add(s, r, 1)     # reads the body's own write of r
                f.mul(r, s, 2)

            f.if_then(f.a(0), "==", 1, body)
            f.add(r, r, s)
            f.ret(r)
        program = b.build()
        clone = clone_program(program)
        assert if_convert(clone) == 1
        clone.link()
        for x in (0, 1):
            assert _run(clone, "worker", [x]) == _run(program, "worker", [x])

    def test_store_body_not_converted(self):
        b = ProgramBuilder()
        d = b.data("d", 8)
        with b.function("worker", args=["x"]) as f:
            f.if_then(f.a(0), ">", 0,
                      lambda: f.store(Mem(None, disp=d.value), 1))
            f.ret(0)
        clone = clone_program(b.build())
        assert if_convert(clone) == 0

    def test_division_body_not_converted(self):
        """Speculating a division could fault; must stay branchy."""
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 0)
            f.if_then(f.a(0), "!=", 0,
                      lambda: f.div(r, 100, f.a(0)))
            f.ret(r)
        program = b.build()
        clone = clone_program(program)
        assert if_convert(clone) == 0
        clone.link()
        assert _run(clone, "worker", [0]) == 0  # would fault if converted

    def test_call_body_not_converted(self):
        b = ProgramBuilder()
        with b.function("g", args=[]) as f:
            f.ret(5)
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 0)
            f.if_then(f.a(0), ">", 0, lambda: f.call(r, "g", []))
            f.ret(r)
        clone = clone_program(b.build())
        assert if_convert(clone) == 0

    def test_oversized_body_not_converted(self):
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 0)

            def body():
                for _ in range(8):  # exceeds max_body
                    f.add(r, r, 1)

            f.if_then(f.a(0), ">", 0, body)
            f.ret(r)
        clone = clone_program(b.build())
        assert if_convert(clone, max_body=4) == 0
        clone2 = clone_program(b.build())
        assert if_convert(clone2, max_body=16) == 1

    def test_converted_loop_body_becomes_unrollable(self):
        from repro.optlevels import unroll_loops

        b = ProgramBuilder()
        arr = b.data("arr", 8 * 64)
        with b.function("worker", args=["n"]) as f:
            acc = f.reg()
            i = f.reg()
            f.mov(acc, 0)

            def body():
                v = f.reg()
                f.load(v, Mem(None, disp=arr.value, index=i, scale=8))
                f.if_then(v, ">", 50, lambda: f.mul(v, v, 2))
                f.add(acc, acc, v)

            f.for_range(i, 0, f.a(0), body)
            f.ret(acc)
        program = b.build()
        # Without if-conversion the body is multi-block: not unrollable.
        c1 = clone_program(program)
        assert unroll_loops(c1) == 0
        # After conversion + merging it unrolls.
        c2 = clone_program(program)
        assert if_convert(c2) == 1
        merge_straightline_blocks(c2)
        assert unroll_loops(c2) == 1
        c2.link()
        machine = Machine(c2)
        machine.memory.write_words(arr.value, [10 * k for k in range(64)])
        machine.spawn("worker", [13])
        machine.run()
        expected = sum(
            v * 2 if v > 50 else v for v in (10 * k for k in range(13))
        )
        assert machine.threads[0].retval == expected


class TestBlockMerging:
    def test_merges_fallthrough_only_blocks(self):
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 1)
            f.label("middle")  # fall-through label, never branched to
            f.add(r, r, 1)
            f.ret(r)
        program = b.build()
        clone = clone_program(program)
        merged = merge_straightline_blocks(clone)
        assert merged >= 1
        clone.link()
        assert _run(clone, "worker", [0]) == 2

    def test_does_not_merge_branch_targets(self):
        b = ProgramBuilder()
        with b.function("worker", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 0)
            f.if_then(f.a(0), ">", 0, lambda: f.add(r, r, 5))
            f.add(r, r, 1)
            f.ret(r)
        clone = clone_program(b.build())
        before = sum(len(fn.blocks) for fn in clone.functions.values())
        merge_straightline_blocks(clone)
        clone.link()
        assert _run(clone, "worker", [1]) == 6
        assert _run(clone, "worker", [0]) == 1
