"""Unit tests for the tracer: token streams, logical threads, skipping."""

import io

import pytest

from repro.isa import Mem
from repro.machine import Machine
from repro.program import ProgramBuilder
from repro.tracer import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_LOCK,
    TOK_RET,
    TOK_UNLOCK,
    TraceRecorder,
    load_traces,
    save_traces,
)

from util import build_call_program, build_diamond_program, build_lock_program, run_traced


class TestTokenStreams:
    def test_straightline_blocks_recorded(self):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [0], None)], ["worker"])
        assert len(traces) == 1
        kinds = [t[0] for t in traces.threads[0].tokens]
        assert all(k == TOK_BLOCK for k in kinds)

    def test_block_instruction_counts_match_program(self):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [0], None)], ["worker"])
        for token in traces.threads[0].tokens:
            block = program.block_by_addr[token[1]]
            assert token[2] == len(block.instructions)

    def test_call_and_ret_tokens(self):
        program = build_call_program()
        traces, _m = run_traced(program, [("worker", [3], None)], ["worker"])
        kinds = [t[0] for t in traces.threads[0].tokens]
        assert TOK_CALL in kinds
        assert TOK_RET in kinds
        ci = kinds.index(TOK_CALL)
        assert kinds[ci + 1] == TOK_BLOCK  # callee entry follows the call

    def test_memory_records_have_slots_and_addresses(self):
        b = ProgramBuilder()
        data = b.data("d", 64)
        with b.function("worker", args=["tid"]) as f:
            v = f.reg()
            f.load(v, Mem(None, disp=data.value, index=f.a(0), scale=8))
            f.ret(v)
        program = b.build()
        traces, _m = run_traced(program, [("worker", [2], None)], ["worker"])
        mems = [m for t in traces.threads[0].tokens if t[0] == TOK_BLOCK
                for m in t[3]]
        assert len(mems) == 1
        slot, is_store, addr, size = mems[0]
        assert not is_store
        assert addr == data.value + 16
        assert size == 8

    def test_lock_tokens_carry_addresses(self):
        program, lock_addr, _counter = build_lock_program(shared_lock=True)
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(2)], ["worker"]
        )
        for trace in traces:
            kinds = [t[0] for t in trace.tokens]
            assert TOK_LOCK in kinds and TOK_UNLOCK in kinds
            lock_tok = next(t for t in trace.tokens if t[0] == TOK_LOCK)
            assert lock_tok[1] == lock_addr


class TestLogicalThreads:
    def _looping_program(self):
        """One CPU thread calling the worker function N times."""
        b = ProgramBuilder()
        with b.function("request", args=["rid"]) as f:
            r = f.reg()
            f.mul(r, f.a(0), 2)
            f.ret(r)
        with b.function("main", args=["n"]) as f:
            i = f.reg()
            r = f.reg()
            f.for_range(i, 0, f.a(0), lambda: f.call(r, "request", [i]))
            f.ret(0)
        return b.build()

    def test_one_logical_thread_per_worker_invocation(self):
        program = self._looping_program()
        traces, _m = run_traced(program, [("main", [5], None)], ["request"])
        assert len(traces) == 5
        assert all(t.root == "request" for t in traces)
        assert all(t.closed for t in traces)

    def test_outer_code_not_traced(self):
        program = self._looping_program()
        traces, _m = run_traced(program, [("main", [3], None)], ["request"])
        for trace in traces:
            for token in trace.tokens:
                assert token[0] != TOK_CALL  # request calls nothing

    def test_spawned_root_traces_whole_thread(self):
        program = build_call_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        assert len(traces) == 4
        assert {t.cpu_tid for t in traces} == {0, 1, 2, 3}


class TestSkipping:
    def test_io_instructions_skip_counted(self):
        b = ProgramBuilder()
        with b.function("worker", args=[]) as f:
            v = f.reg()
            f.io_read(v)
            f.io_write(v)
            f.ret(0)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [], [7])], ["worker"], io_cost=30
        )
        trace = traces.threads[0]
        assert trace.skipped.get("io") == 60
        assert traces.traced_fraction() < 1.0

    def test_spin_skip_counted_under_contention(self):
        program, _lock, _counter = build_lock_program(shared_lock=True)
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)],
            ["worker"], quantum=2, spin_cost=10,
        )
        assert traces.skipped_by_reason().get("spin", 0) > 0

    def test_excluded_function_skip_counted(self):
        program = build_call_program()
        traces, _m = run_traced(
            program, [("worker", [2], None)], ["worker"],
            exclude=["square"],
        )
        trace = traces.threads[0]
        assert trace.skipped.get("filtered", 0) > 0
        for token in trace.tokens:
            assert token[0] != TOK_CALL

    def test_traced_fraction_without_skips_is_one(self):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [0], None)], ["worker"])
        assert traces.traced_fraction() == 1.0


class TestTraceSerialization:
    def test_roundtrip_preserves_everything(self):
        program, _lock, _counter = build_lock_program(shared_lock=True)
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        buf = io.StringIO()
        save_traces(traces, buf)
        buf.seek(0)
        loaded = load_traces(buf)
        assert len(loaded) == len(traces)
        for a, b in zip(traces, loaded):
            assert a.tokens == b.tokens
            assert a.skipped == b.skipped
            assert a.root == b.root
            assert a.cpu_tid == b.cpu_tid

    def test_roundtrip_via_file(self, tmp_path):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [1], None)], ["worker"])
        path = str(tmp_path / "t.jsonl")
        save_traces(traces, path)
        loaded = load_traces(path)
        assert loaded.threads[0].tokens == traces.threads[0].tokens

    def test_version_mismatch_rejected(self):
        buf = io.StringIO('{"version": 99}\n')
        with pytest.raises(ValueError):
            load_traces(buf)
