"""Fault-injection tests: the pipeline recovers exactly or fails typed.

Every scenario here asserts one of two outcomes and nothing else:

* **exact recovery** -- the run's result is bit-identical to a
  fault-free ``jobs=1`` run (serialized trace bytes compared);
* **a typed error** -- a :class:`repro.errors.ReproError` subclass with
  the original cause chained in.

A *wrong answer* (silently accepted corruption, a half-retried bug) is
never acceptable, and the fuzz tests below hammer on that boundary.
"""

import io
import os
import tempfile
from concurrent.futures import BrokenExecutor

import pytest

from repro import faults
from repro.artifacts import (
    KIND_REPORT,
    KIND_TRACES,
    ArtifactStore,
    serialize_traces,
)
from repro.errors import (
    ArtifactCorruptError,
    ReproError,
    RetryExhaustedError,
    StageTimeoutError,
    TraceCorruptError,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.obs import Recorder
from repro.session import AnalysisSession
from repro.tracer import load_traces

WORKLOADS = ["vectoradd", "nn"]
N_THREADS = 8

STORE_FIELDS = {
    "kind": KIND_TRACES,
    "workload": "vectoradd",
    "n_threads": N_THREADS,
    "seed": 7,
}


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serialized trace bytes: the ground truth per workload."""
    with faults.injected(None):
        session = AnalysisSession()
        return {
            name: serialize_traces(session.trace(name, n_threads=N_THREADS))
            for name in WORKLOADS
        }


class TestPlanMechanics:
    def test_spec_validates_site_and_kind(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="pool.nowhere", kind="kill")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="pool.worker", kind="explode")

    def test_scheduled_fault_fires_on_the_named_hit(self):
        plan = FaultPlan([FaultSpec(site="pool.result", kind="timeout",
                                    at=2)])
        plan.check("pool.result", "x")
        with pytest.raises(StageTimeoutError):
            plan.check("pool.result", "x")
        plan.check("pool.result", "x")
        assert plan.injected == {"pool.result": 1}

    def test_match_scopes_a_fault_to_one_token(self):
        plan = FaultPlan([FaultSpec(site="pool.result", kind="timeout",
                                    match="nn")])
        plan.check("pool.result", "vectoradd")
        with pytest.raises(StageTimeoutError):
            plan.check("pool.result", "nn")

    def test_truncate_halves_the_payload(self):
        plan = FaultPlan([FaultSpec(site="trace.load", kind="truncate")])
        assert plan.mangle("trace.load", b"abcdef") == b"abc"

    def test_bitflip_is_seed_deterministic(self):
        data = bytes(range(64))
        first = FaultPlan([FaultSpec(site="artifact.read", kind="bitflip")],
                          seed=5).mangle("artifact.read", data)
        second = FaultPlan([FaultSpec(site="artifact.read", kind="bitflip")],
                           seed=5).mangle("artifact.read", data)
        assert first == second
        assert first != data
        assert len(first) == len(data)

    def test_rate_rolls_are_reproducible(self):
        def fired(seed):
            plan = FaultPlan(
                [FaultSpec(site="pool.result", kind="timeout", rate=0.3)],
                seed=seed,
            )
            out = []
            for _ in range(40):
                try:
                    plan.check("pool.result", "w")
                    out.append(False)
                except StageTimeoutError:
                    out.append(True)
            return out
        assert fired(11) == fired(11)
        assert any(fired(11)) and not all(fired(11))
        assert fired(11) != fired(12)


class TestClassificationAndRetry:
    def test_transient_types_are_retryable(self):
        for exc in (OSError("io"), BrokenExecutor(), TimeoutError(),
                    StageTimeoutError("t"), TraceCorruptError("c"),
                    EOFError(), ConnectionResetError()):
            assert faults.is_retryable(exc), exc

    def test_semantic_and_bug_types_are_not(self):
        for exc in (FileNotFoundError("gone"), NotADirectoryError("bad"),
                    ValueError("bug"), KeyError("bug"), AssertionError()):
            assert not faults.is_retryable(exc), exc

    def test_retry_recovers_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.0)
        assert faults.call_with_retry(flaky, policy=policy,
                                      label="flaky") == "ok"
        assert len(calls) == 3

    def test_exhaustion_raises_typed_with_cause(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0)

        def down():
            raise OSError("still down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            faults.call_with_retry(down, policy=policy, label="down")
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value.__cause__, OSError)
        assert excinfo.value.hint

    def test_bug_propagates_on_the_first_attempt(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValueError("bug")

        with pytest.raises(ValueError, match="bug"):
            faults.call_with_retry(
                bug, policy=RetryPolicy(attempts=5, base_delay=0.0),
                label="bug",
            )
        assert len(calls) == 1

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.3)
        assert [policy.delay(n) for n in range(4)] == [0.1, 0.2, 0.3, 0.3]


#: fault scenario -> plan factory.  Every fault is recoverable: wherever
#: it fires (or doesn't, for cells whose path never reaches the site),
#: the run must still produce bit-identical traces.
FAULT_PLANS = {
    "worker_kill": lambda: FaultPlan(
        [FaultSpec(site="pool.worker", kind="kill")]),
    "payload_bitflip": lambda: FaultPlan(
        [FaultSpec(site="artifact.read", kind="bitflip")]),
    "meta_truncation": lambda: FaultPlan(
        [FaultSpec(site="artifact.meta", kind="truncate")]),
    "trace_truncation": lambda: FaultPlan(
        [FaultSpec(site="trace.load", kind="truncate")]),
    "injected_timeout": lambda: FaultPlan(
        [FaultSpec(site="pool.result", kind="timeout")]),
}


class TestRecoveryMatrix:
    """fault x jobs x cache-state: recovery is always bit-identical."""

    @pytest.mark.parametrize("warm", [False, True],
                             ids=["cold", "warm"])
    @pytest.mark.parametrize("jobs", [1, 4], ids=["jobs1", "jobs4"])
    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_recovery_is_exact(self, tmp_path, baseline, fault, jobs, warm):
        cache = str(tmp_path / "cache")
        if warm:
            with faults.injected(None):
                AnalysisSession(cache_dir=cache).trace_many(
                    WORKLOADS, n_threads=N_THREADS
                )
        with faults.injected(FAULT_PLANS[fault]()):
            session = AnalysisSession(cache_dir=cache, jobs=jobs)
            traced = session.trace_many(WORKLOADS, n_threads=N_THREADS)
        for name in WORKLOADS:
            assert serialize_traces(traced[name]) == baseline[name], name

    def test_killed_workers_do_not_change_counters(self):
        # The determinism contract survives recovery: a run whose pool
        # workers all died exports the same telemetry *counters* as a
        # clean serial run (the activity shows up in gauges only).
        with faults.injected(None):
            clean = AnalysisSession(jobs=1, recorder=Recorder())
            clean.trace_many(WORKLOADS, n_threads=N_THREADS)
            expected = clean.telemetry().counters
        plan = FaultPlan([FaultSpec(site="pool.worker", kind="kill")])
        with faults.injected(plan):
            faulty = AnalysisSession(jobs=4, recorder=Recorder())
            faulty.trace_many(WORKLOADS, n_threads=N_THREADS)
            observed = faulty.telemetry().counters
        assert observed == expected


def _buggy_worker(spec):
    raise ValueError("workload bug, not infrastructure")


class TestFatalErrorsPropagate:
    def test_worker_bug_is_not_silently_retried(self, tmp_path,
                                                monkeypatch):
        # Regression: trace_many used to catch ValueError wholesale and
        # quietly regenerate serially, masking real workload bugs.
        import repro.session as session_module

        monkeypatch.setattr(session_module, "_trace_worker", _buggy_worker)
        with faults.injected(None):
            session = AnalysisSession(cache_dir=str(tmp_path / "cache"),
                                      jobs=2)
            with pytest.raises(ValueError, match="workload bug") as excinfo:
                session.trace_many(WORKLOADS, n_threads=N_THREADS)
            # No serial fallback ran: the bug aborted the batch.
            assert session.executions == 0
            assert session.fault_stats["retries"] == 0
        # The worker's original traceback rides along as the cause.
        assert excinfo.value.__cause__ is not None
        assert "_buggy_worker" in str(excinfo.value.__cause__)

    def test_exhausted_transient_io_raises_typed_error(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="io.transient", kind="raise",
                                    at=1, count=999)])
        with faults.injected(plan):
            session = AnalysisSession(cache_dir=str(tmp_path / "cache"))
            with pytest.raises(RetryExhaustedError) as excinfo:
                session.trace("vectoradd", n_threads=N_THREADS)
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value.__cause__, OSError)


class TestTelemetrySurface:
    def test_recovery_activity_exported_as_gauges(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="pool.result", kind="timeout")])
        with faults.injected(plan):
            session = AnalysisSession(cache_dir=str(tmp_path / "cache"),
                                      jobs=2, recorder=Recorder())
            session.trace_many(WORKLOADS, n_threads=N_THREADS)
            telemetry = session.telemetry()
        assert telemetry.gauges["faults.worker_failures"] >= 1
        # Hit counters are per (site, token): the at=1 spec fires once
        # per workload token.
        assert telemetry.gauges["faults.injected.pool.result"] \
            == len(WORKLOADS)
        assert "faults.retries" in telemetry.gauges
        assert "faults.pool_fallbacks" in telemetry.gauges
        # Recovery never leaks into the counters section.
        assert not any(k.startswith("faults.") for k in telemetry.counters)

    def test_corrupt_cache_reads_exported_as_gauge(self, tmp_path):
        cache = str(tmp_path / "cache")
        with faults.injected(None):
            AnalysisSession(cache_dir=cache).trace("vectoradd",
                                                   n_threads=N_THREADS)
        plan = FaultPlan([FaultSpec(site="artifact.read", kind="bitflip")])
        with faults.injected(plan):
            session = AnalysisSession(cache_dir=cache, recorder=Recorder())
            session.trace("vectoradd", n_threads=N_THREADS)
            telemetry = session.telemetry()
        assert telemetry.gauges["cache.corrupt"] == 1
        assert telemetry.gauges["faults.injected.artifact.read"] == 1


class TestPackedTraceFaults:
    """``trace.pack``: corrupted packed buffers surface as typed errors.

    The packed columns are the replayer's and the memo table's ground
    truth, so a flipped bit in them must never replay (or memoize) as a
    plausible-but-wrong stream: the content signature catches it at
    first use.
    """

    def _tokens(self):
        with faults.injected(None):
            session = AnalysisSession()
            traces = session.trace("vectoradd", n_threads=N_THREADS)
        return list(traces.threads[0].tokens)

    def test_bitflip_caught_at_first_verification(self):
        from repro.tracer.packed import PackedTrace

        tokens = self._tokens()
        plan = FaultPlan([FaultSpec(site="trace.pack", kind="bitflip")])
        with faults.injected(plan):
            packed = PackedTrace.from_tokens(tokens)
            assert plan.injected == {"trace.pack": 1}
            with pytest.raises(TraceCorruptError) as excinfo:
                packed.ensure_verified()
        assert excinfo.value.site == "trace.pack"
        assert excinfo.value.hint
        # The pristine stream still packs and verifies cleanly.
        with faults.injected(None):
            PackedTrace.from_tokens(tokens).ensure_verified()

    def test_truncation_raises_at_pack_time(self):
        from repro.tracer.packed import PackedTrace

        plan = FaultPlan([FaultSpec(site="trace.pack", kind="truncate")])
        with faults.injected(plan):
            with pytest.raises(TraceCorruptError) as excinfo:
                PackedTrace.from_tokens(self._tokens())
        assert excinfo.value.site == "trace.pack"

    def test_corrupt_pack_never_reaches_replay_metrics(self):
        # End to end: a fault armed while the analyzer packs the traces
        # must abort the analysis as a typed error, not skew counters.
        from repro.core import analyze_traces

        with faults.injected(None):
            session = AnalysisSession()
            traces = session.trace("vectoradd", n_threads=N_THREADS)
        plan = FaultPlan([FaultSpec(site="trace.pack", kind="bitflip")])
        with faults.injected(plan):
            with pytest.raises(TraceCorruptError) as excinfo:
                analyze_traces(traces, warp_size=8)
        assert excinfo.value.site == "trace.pack"


class TestEnvironmentPlans:
    def test_smoke_plan_arms_only_recovery_transparent_sites(self):
        # Pool faults fall back to the bit-identical serial path;
        # transient index.db faults are absorbed by the index's retry
        # loop (and degrade to a warning on the write side); shard
        # kills are respawned and the cell re-run -- every observable
        # analysis result is unchanged under smoke.
        plan = faults.smoke_plan(seed=1)
        assert plan.specs
        sites = {spec.site for spec in plan.specs}
        assert sites <= {"pool.spawn", "pool.worker", "pool.result",
                         "index.db", "serve.shard"}
        assert "serve.shard" in sites
        assert all(spec.rate > 0 for spec in plan.specs)

    def test_serve_shard_is_a_registered_fault_site(self):
        assert "serve.shard" in faults.FAULT_SITES
        kill = [spec for spec in faults.smoke_plan(seed=1).specs
                if spec.site == "serve.shard"]
        assert len(kill) == 1 and kill[0].kind == "kill"

    def test_smoke_pool_plan_adds_the_shm_substrate_sites(self):
        plan = faults.smoke_pool_plan(seed=1)
        sites = {spec.site for spec in plan.specs}
        # Everything smoke arms, plus the persistent-pool sites.
        assert sites >= {spec.site for spec in faults.smoke_plan(seed=1).specs}
        assert {"pool.attach", "shm.unlink"} <= sites
        assert sites <= set(faults.FAULT_SITES)
        assert all(spec.rate > 0 for spec in plan.specs)

    def test_env_smoke_pool_installs_the_extended_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "smoke-pool")
        monkeypatch.setenv(faults.ENV_SEED_VAR, "78")
        faults.reset()
        try:
            plan = faults.active()
            assert plan is not None
            assert plan.seed == 78
            assert "shm.unlink" in {spec.site for spec in plan.specs}
        finally:
            faults.reset()

    def test_env_smoke_installs_a_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "smoke")
        monkeypatch.setenv(faults.ENV_SEED_VAR, "77")
        faults.reset()
        try:
            plan = faults.active()
            assert plan is not None
            assert plan.seed == 77
        finally:
            faults.reset()

    def test_env_off_values_disable_injection(self, monkeypatch):
        for value in ("", "0", "off", "none"):
            monkeypatch.setenv(faults.ENV_VAR, value)
            assert faults.plan_from_env() is None

    def test_env_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "chaos-monkey")
        with pytest.raises(ValueError, match="THREADFUSER_FAULTS"):
            faults.plan_from_env()


class TestCLISurface:
    def _corrupt_store(self, tmp_path):
        cache = str(tmp_path / "cache")
        store = ArtifactStore(cache)
        store.put_bytes(KIND_TRACES, STORE_FIELDS, b"payload")
        path = store.payload_path(KIND_TRACES, STORE_FIELDS)
        with open(path, "r+b") as out:
            out.write(b"X")
        assert store.get_bytes(KIND_TRACES, STORE_FIELDS) is None
        return cache

    def test_cache_info_reports_quarantined_entries(self, tmp_path,
                                                    capsys):
        from repro.cli import main

        cache = self._corrupt_store(tmp_path)
        assert main(["cache", "info", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "quarantined:  1 corrupt entries" in out
        assert "cache clear --quarantined" in out

    def test_cache_clear_quarantined(self, tmp_path, capsys):
        from repro.cli import main

        cache = self._corrupt_store(tmp_path)
        assert main(["cache", "clear", "--quarantined",
                     "--cache-dir", cache]) == 0
        assert "removed 1 quarantined entries" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache]) == 0
        assert "quarantined:" not in capsys.readouterr().out

    def test_typed_errors_exit_with_code_3(self, monkeypatch, capsys):
        from repro import cli

        def boom(_args):
            raise ArtifactCorruptError("store is hosed",
                                       site="artifact.read",
                                       hint="purge it")

        monkeypatch.setitem(cli._COMMANDS, "list", boom)
        assert cli.main(["list"]) == 3
        err = capsys.readouterr().err
        assert "error [artifact.read]: store is hosed" in err
        assert "hint: purge it" in err


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@pytest.fixture(scope="module")
def trace_text(baseline):
    return baseline["vectoradd"].decode("utf-8")


class TestFuzzCorruption:
    """Random single-byte mutations must never be silently accepted."""

    @settings(max_examples=20, deadline=None)
    @given(pos_frac=st.floats(min_value=0.0, max_value=1.0),
           xor=st.integers(min_value=1, max_value=255))
    def test_store_never_serves_mutated_payload(self, baseline,
                                                pos_frac, xor):
        original = baseline["vectoradd"]
        pos = min(int(pos_frac * len(original)), len(original) - 1)
        mutated = bytearray(original)
        mutated[pos] ^= xor
        assert bytes(mutated) != original
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            store.put_bytes(KIND_TRACES, STORE_FIELDS, original)
            path = store.payload_path(KIND_TRACES, STORE_FIELDS)
            with open(path, "wb") as out:
                out.write(bytes(mutated))
            with pytest.raises(ArtifactCorruptError):
                store.get_bytes(KIND_TRACES, STORE_FIELDS,
                                on_corrupt="raise")
            # The entry is quarantined; a plain read is now a miss.
            assert store.get_bytes(KIND_TRACES, STORE_FIELDS) is None
            assert store.quarantined()["count"] == 1

    @settings(max_examples=30, deadline=None)
    @given(pos_frac=st.floats(min_value=0.0, max_value=1.0),
           replacement=st.sampled_from(list('Xz9"{}[],:0')))
    def test_loader_never_accepts_mutated_text(self, trace_text,
                                               pos_frac, replacement):
        pos = min(int(pos_frac * len(trace_text)), len(trace_text) - 1)
        if trace_text[pos] == replacement:
            replacement = "X" if trace_text[pos] != "X" else "Y"
        mutated = trace_text[:pos] + replacement + trace_text[pos + 1:]
        with faults.injected(None):
            with pytest.raises(TraceCorruptError):
                load_traces(io.StringIO(mutated))

    @settings(max_examples=15, deadline=None)
    @given(keep_frac=st.floats(min_value=0.0, max_value=0.999))
    def test_loader_never_accepts_truncation(self, trace_text, keep_frac):
        mutated = trace_text[: int(keep_frac * len(trace_text))]
        with faults.injected(None):
            with pytest.raises(TraceCorruptError):
                load_traces(io.StringIO(mutated))


class TestIndexFaults:
    """The ``index.db`` fault site: retried or typed, never wrong.

    The result index sits *beside* the artifact store, so its failure
    contract has an extra leg: a write-side index failure must degrade
    to a warning (the artifact write already succeeded) and a rebuild
    must restore the lost rows exactly.
    """

    @staticmethod
    def _seeded_store(root):
        from test_index import put_report

        store = ArtifactStore(root)
        put_report(store, workload="pigz", efficiency=0.3,
                   hotspots={("worker", 64): 7})
        put_report(store, workload="nbody", efficiency=0.9)
        return store

    def test_single_transient_fault_is_absorbed_by_retry(self, tmp_path):
        store = self._seeded_store(str(tmp_path))
        with faults.injected(FaultPlan(
                [FaultSpec(site="index.db", kind="raise", at=1)])):
            rows = store.index.query()
        assert [r["workload"] for r in rows] == ["nbody", "pigz"]

    def test_persistent_fault_raises_typed_with_site_and_hint(
            self, tmp_path):
        store = self._seeded_store(str(tmp_path))
        with faults.injected(FaultPlan(
                [FaultSpec(site="index.db", kind="raise", at=1,
                           count=99)])):
            with pytest.raises(ReproError) as excinfo:
                store.index.query()
        err = excinfo.value
        assert err.site == "index.db"
        assert "index rebuild" in err.hint
        assert isinstance(err.__cause__, OSError)

    def test_write_side_failure_degrades_and_rebuild_recovers(
            self, tmp_path):
        from repro.index import IndexWarning

        store = self._seeded_store(str(tmp_path))
        before = store.index.snapshot()
        with faults.injected(FaultPlan(
                [FaultSpec(site="index.db", kind="raise", at=1,
                           count=99)])):
            with pytest.warns(IndexWarning, match="store is unaffected"):
                from test_index import put_report

                fields = put_report(store, workload="vectoradd",
                                    efficiency=0.5)
        # The artifact itself landed despite the hosed index...
        assert store.get_bytes(KIND_REPORT, fields) is not None
        # ...the index is stale (the new run is missing)...
        assert len(store.index.query()) == 2
        assert store.index.snapshot() == before
        # ...and a rebuild with the fault gone recovers exactly.
        stats = store.index.rebuild()
        assert stats["indexed"] == 3
        assert len(store.index.query(workload="vectoradd")) == 1

    def test_smoke_plan_never_yields_wrong_answers(self, tmp_path):
        """Under the smoke plan's low-rate index faults, every query
        outcome is either correct rows or a typed error."""
        store = self._seeded_store(str(tmp_path))
        expected = [r["key"] for r in store.index.query()]
        with faults.injected(faults.smoke_plan()):
            for _ in range(20):
                try:
                    got = [r["key"] for r in store.index.query()]
                except ReproError as err:
                    assert err.site == "index.db"
                else:
                    assert got == expected
