"""Replay execution knobs are observationally invisible.

The three replay execution knobs -- ``packed`` (columnar replay),
``vector`` (bulk converged-span consumption over packed columns), and
``memo`` (signature-keyed warp-metrics reuse) -- must never change a
single observable: for one workload per catalog family, every (mode,
memo, jobs) combination, traced under both execution engines, has to
produce a byte-identical pickled report and identical telemetry
*counters* (gauges are excluded by design: ``memo.*`` hit rates
legitimately differ between serial and sharded replay, and the
``replay.vector_*`` utilization fractions vary with sharding too,
which is exactly why they are gauges).

The synthetic replicated-lane tests then pin down the memo mechanics
themselves: identical warps actually hit, hits clone rather than
alias, and the warp-trace generator's output is byte-identical with
memoization force-disabled.
"""

import functools
import io
import pickle

import pytest

from repro.core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from repro.obs import Recorder
from repro.tracegen import generate_kernel_trace, save_kernel_trace
from repro.tracer.events import TraceSet
from repro.workloads import get_workload, trace_instance

#: One representative workload per catalog family (Table 1 suites).
FAMILY_WORKLOADS = [
    "vectoradd",       # Micro Benchmark
    "streamcluster",   # Rodinia 3.1
    "blackscholes",    # ParSec 3.0
    "dsb_uniqueid",    # DeathStarBench
    "memcached",       # uSuite (emulate_locks coverage)
    "nbody",           # Paropoly
    "md5",             # Others
]

N_THREADS = 48
WARP_SIZE = 16

#: Replay mode -> (packed, vector) analyzer knobs.
MODES = {
    "tuple": (False, False),
    "packed": (True, False),
    "vector": (True, True),
}

ENGINES = ("compiled", "interp")

COMBOS = [
    (mode, memo, jobs)
    for mode in MODES
    for memo in (True, False)
    for jobs in (1, 2)
]


@functools.lru_cache(maxsize=None)
def _traces(name, engine="compiled"):
    traces, _ = trace_instance(get_workload(name).instantiate(N_THREADS),
                               engine=engine)
    return traces


def _config(name):
    return AnalyzerConfig(warp_size=WARP_SIZE,
                          emulate_locks=(name == "memcached"))


def _run(name, mode, memo, jobs, engine="compiled"):
    packed, vector = MODES[mode]
    recorder = Recorder()
    analyzer = ThreadFuserAnalyzer(_config(name), jobs=jobs,
                                   recorder=recorder, memo=memo,
                                   packed=packed, vector=vector)
    report = analyzer.analyze(_traces(name, engine))
    telemetry = recorder.telemetry()
    return pickle.dumps(report), dict(telemetry.counters), telemetry.gauges


@functools.lru_cache(maxsize=None)
def _reference(name, engine):
    """The seed observables: tuple replay, no memo, serial."""
    report, counters, _ = _run(name, "tuple", memo=False, jobs=1,
                               engine=engine)
    return report, counters


class TestMemoParityMatrix:
    @pytest.mark.parametrize("mode,memo,jobs", COMBOS,
                             ids=[f"{mode}-"
                                  f"{'memo' if m else 'nomemo'}-jobs{j}"
                                  for mode, m, j in COMBOS])
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", FAMILY_WORKLOADS)
    def test_reports_and_counters_identical(self, name, engine, mode,
                                            memo, jobs):
        reference, ref_counters = _reference(name, engine)
        report, counters, gauges = _run(name, mode, memo, jobs,
                                        engine=engine)
        assert report == reference
        assert counters == ref_counters
        if memo and jobs == 1:
            # Memoization accounts its activity as gauges, never
            # counters; lookups equal the number of replayed warps.
            assert gauges["memo.warp_lookups"] == pickle.loads(
                report).metrics.n_warps
            assert "memo.warp_hits" in gauges
        if not memo:
            assert "memo.warp_lookups" not in gauges


def _replicated_traces(n_threads, workload="memo_synth"):
    """Threads all sharing one token stream: every warp is memo-equal."""
    source, _ = trace_instance(get_workload("vectoradd").instantiate(1))
    tokens = list(source.threads[0].tokens)
    root = source.threads[0].root
    traces = TraceSet(workload=workload)
    for tid in range(n_threads):
        traces.new_thread(tid, root).tokens = list(tokens)
    return traces


class TestMemoMechanics:
    def test_identical_warps_hit_the_memo(self):
        traces = _replicated_traces(4 * WARP_SIZE)
        recorder = Recorder()
        analyzer = ThreadFuserAnalyzer(AnalyzerConfig(warp_size=WARP_SIZE),
                                       recorder=recorder)
        memo_report = analyzer.analyze(traces)
        gauges = recorder.telemetry().gauges
        assert gauges["memo.warp_lookups"] == 4
        assert gauges["memo.warp_hits"] == 3
        plain = ThreadFuserAnalyzer(AnalyzerConfig(warp_size=WARP_SIZE),
                                    memo=False).analyze(traces)
        assert pickle.dumps(memo_report) == pickle.dumps(plain)

    def test_distinct_streams_do_not_collide(self):
        # Same root, same length, different block addresses: the
        # signature tuple must keep the warps apart.
        traces = _replicated_traces(2 * WARP_SIZE)
        second_warp = traces.threads[WARP_SIZE:]
        for thread in second_warp:
            tokens = list(thread.tokens)
            for i, token in enumerate(tokens):
                if token[0] == "B":
                    tokens[i] = (token[0], token[1] + 0x8, *token[2:])
            thread.tokens = tokens
        recorder = Recorder()
        ThreadFuserAnalyzer(AnalyzerConfig(warp_size=WARP_SIZE),
                            recorder=recorder).analyze(traces)
        gauges = recorder.telemetry().gauges
        assert gauges["memo.warp_lookups"] == 2
        assert gauges["memo.warp_hits"] == 0

    def test_hits_clone_metrics_not_alias(self):
        traces = _replicated_traces(2 * WARP_SIZE)
        analyzer = ThreadFuserAnalyzer(AnalyzerConfig(warp_size=WARP_SIZE))
        dcfgs = analyzer.prepare(traces)
        from repro.core.analyzer import _memo_key, _replay_warp
        from repro.core.warp import form_warps

        warps = form_warps(traces, WARP_SIZE, "linear")
        assert _memo_key(warps[0]) == _memo_key(warps[1])
        first = _replay_warp(warps[0], dcfgs, analyzer.config)
        clone = first.clone()
        assert clone is not first
        assert pickle.dumps(clone) == pickle.dumps(first)
        # Mutating the clone (what aggregation-time merging may do)
        # must not leak back into the cached entry.
        clone.issues += 1
        assert clone.issues == first.issues + 1


class TestGeneratorParity:
    def test_kernel_traces_identical_with_memo_disabled(self, monkeypatch):
        """The warp-trace generator's output never depends on ``memo``.

        Visitors force fresh replays internally, so the generated
        streams must be byte-identical even when the analyzer class is
        pinned to ``memo=False`` outright.
        """
        traces = _traces("vectoradd")
        program = get_workload("vectoradd").instantiate(N_THREADS).program

        def _serialize(kernel):
            out = io.StringIO()
            save_kernel_trace(kernel, out)
            return out.getvalue()

        default = _serialize(
            generate_kernel_trace(traces, program, warp_size=WARP_SIZE))

        from repro.tracegen import generator as generator_module

        pinned = functools.partial(ThreadFuserAnalyzer, memo=False)
        monkeypatch.setattr(generator_module, "ThreadFuserAnalyzer", pinned)
        no_memo = _serialize(
            generate_kernel_trace(traces, program, warp_size=WARP_SIZE))
        assert default == no_memo
