"""Unit tests for the program IR: blocks, functions, linking, successors."""

import pytest

from repro.isa import Imm, Label, Mem, Op, Reg
from repro.program import INSTR_PITCH, BasicBlock, Function, Instruction, Program
from repro.program import ProgramBuilder


def _simple_program():
    b = ProgramBuilder()
    with b.function("f", args=["x"]) as f:
        r = f.reg()
        f.add(r, f.a(0), 1)
        f.ret(r)
    return b.build()


class TestInstruction:
    def test_mem_operand_detection(self):
        instr = Instruction(Op.ADD, (Reg(1), Reg(2), Mem(Reg(3))))
        assert instr.mem_operand == Mem(Reg(3))
        instr2 = Instruction(Op.ADD, (Reg(1), Reg(2), Imm(3)))
        assert instr2.mem_operand is None

    def test_mov_load_store_classification(self):
        load = Instruction(Op.MOV, (Reg(1), Mem(Reg(2))))
        store = Instruction(Op.MOV, (Mem(Reg(2)), Reg(1)))
        assert load.reads_memory() and not load.writes_memory()
        assert store.writes_memory() and not store.reads_memory()

    def test_lea_never_accesses_memory(self):
        lea = Instruction(Op.LEA, (Reg(1), Mem(Reg(2), disp=8)))
        assert not lea.reads_memory()
        assert not lea.writes_memory()

    def test_alu_with_mem_source_reads(self):
        instr = Instruction(Op.ADD, (Reg(1), Reg(1), Mem(Reg(2))))
        assert instr.reads_memory()
        assert not instr.writes_memory()

    def test_atomic_reads_and_writes(self):
        instr = Instruction(Op.AADD, (Reg(1), Mem(Reg(2)), Imm(1)))
        assert instr.reads_memory()
        assert instr.writes_memory()


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Instruction(Op.RET))
        with pytest.raises(ValueError):
            block.append(Instruction(Op.NOP))

    def test_terminator_property(self):
        block = BasicBlock("b")
        block.append(Instruction(Op.NOP))
        assert block.terminator is None
        block.append(Instruction(Op.JMP, (), target=Label("x")))
        assert block.terminator.op == Op.JMP


class TestLinking:
    def test_addresses_assigned_and_unique(self):
        program = _simple_program()
        addrs = list(program.instr_by_addr)
        assert len(addrs) == len(set(addrs))
        assert all(a >= Program.CODE_BASE for a in addrs)

    def test_instruction_pitch(self):
        program = _simple_program()
        addrs = sorted(program.instr_by_addr)
        diffs = {b - a for a, b in zip(addrs, addrs[1:])}
        assert diffs == {INSTR_PITCH}

    def test_call_target_resolved_to_entry(self):
        b = ProgramBuilder()
        with b.function("callee", args=[]) as f:
            f.ret(0)
        with b.function("caller", args=[]) as f:
            r = f.reg()
            f.call(r, "callee", [])
            f.ret(r)
        program = b.build()
        call = next(
            i for blk in program.functions["caller"].blocks
            for i in blk.instructions if i.op == Op.CALL
        )
        assert call.target == program.functions["callee"].entry.addr

    def test_unknown_call_target_raises(self):
        b = ProgramBuilder()
        with b.function("caller", args=[]) as f:
            r = f.reg()
            f.call(r, "missing", [])
            f.ret(r)
        with pytest.raises(KeyError):
            b.build()

    def test_duplicate_function_rejected(self):
        program = Program()
        fn = Function("f", 0)
        fn.add_block(BasicBlock("entry")).append(Instruction(Op.RET))
        program.add_function(fn)
        with pytest.raises(ValueError):
            program.add_function(Function("f", 0))

    def test_data_objects_aligned_and_disjoint(self):
        b = ProgramBuilder()
        a1 = b.data("a", 10)
        a2 = b.data("b", 100)
        assert a1.value % 32 == 0
        assert a2.value % 32 == 0
        assert a2.value >= a1.value + 10
        program = b.program
        assert program.data_end >= a2.value + 100

    def test_duplicate_data_rejected(self):
        b = ProgramBuilder()
        b.data("a", 8)
        with pytest.raises(ValueError):
            b.data("a", 8)


class TestStaticSuccessors:
    def test_conditional_branch_has_two_successors(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            f.if_then(f.a(0), ">", 0, lambda: f.nop())
            f.ret(0)
        program = b.build()
        func = program.functions["f"]
        entry_succs = program.static_successors(func.entry)
        assert len(entry_succs) == 2

    def test_ret_has_no_successors(self):
        program = _simple_program()
        func = program.functions["f"]
        last = func.blocks[-1]
        assert program.static_successors(last) == []
