#!/usr/bin/env python3
"""Load generator for the ThreadFuser analysis server (``repro.serve``).

Drives an instance through the three traffic shapes the serving layer
is built for and reports throughput/latency/coalescing numbers:

* **cold** -- distinct submits (unique seeds), each awaited to
  completion: the end-to-end analysis latency;
* **warm**  -- the same specs resubmitted: every request must answer
  instantly from the job registry / artifact store;
* **burst** -- N clients submitting one *identical new* spec
  concurrently: exactly one computation may run, the other N-1
  submits must coalesce onto it.

Point it at a running server (``--url http://127.0.0.1:8787``) or let
it spawn one (``--spawn`` boots ``python -m repro serve --port 0`` and
parses the ``SERVE_URL=...`` line).  ``--smoke`` shrinks everything
for CI.  ``--out`` writes the measurements as JSON (the shape
``tools/bench_compare.py`` understands).

Examples::

    python tools/serve_load.py --spawn --smoke --out serve_load.json
    python tools/serve_load.py --url http://127.0.0.1:8787 \
        --requests 8 --clients 8

stdlib only: ``http.client`` keep-alive connections, one per client
thread.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import statistics
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

POLL_S = 0.02
JOB_TIMEOUT_S = 300.0


class Client:
    """One keep-alive HTTP/JSON connection to the server."""

    def __init__(self, url: str) -> None:
        parts = urlsplit(url)
        self.conn = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=60.0)

    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> Tuple[int, Dict]:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        self.conn.request(method, path, body=payload, headers=headers)
        response = self.conn.getresponse()
        data = response.read()
        return response.status, json.loads(data)

    def close(self) -> None:
        self.conn.close()


def wait_done(client: Client, job_id: str) -> Dict:
    """Poll one job until terminal; returns the final snapshot."""
    deadline = time.monotonic() + JOB_TIMEOUT_S
    while True:
        status, doc = client.request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise RuntimeError(f"poll failed: {status} {doc}")
        if doc["status"] in ("done", "failed"):
            return doc
        if time.monotonic() > deadline:
            raise RuntimeError(f"job {job_id[:12]} timed out")
        time.sleep(POLL_S)


def submit_and_wait(client: Client, spec: Dict,
                    endpoint: str = "/v1/analyze") -> Tuple[float, Dict]:
    """Submit one job and await completion; returns (seconds, doc)."""
    t0 = time.perf_counter()
    status, doc = client.request("POST", endpoint, spec)
    if status not in (200, 202):
        raise RuntimeError(f"submit failed: {status} {doc}")
    if doc["status"] != "done":
        doc = wait_done(client, doc["job_id"])
    if doc["status"] != "done":
        raise RuntimeError(f"job failed: {doc.get('error')}")
    return time.perf_counter() - t0, doc


def executions_of(health: Dict) -> int:
    """The server's machine-execution count from a health document.

    Schema v2 exports a top-level ``executions`` total that includes
    every shard; older servers only carried the in-process session's
    counter.
    """
    if "executions" in health:
        return health["executions"]
    return health["session"]["executions"]


def run_saturation(url: str, workload: str, n_threads: int, jobs: int,
                   clients: int,
                   warp_sizes: Tuple[int, ...] = (8, 16, 32)
                   ) -> Dict[str, Any]:
    """Drive ``jobs`` distinct cold sweeps from ``clients`` threads.

    The saturation shape of the sharded serve layer: every job is a
    full (warp-size) sweep with a unique seed, so nothing coalesces
    and nothing answers store-warm -- the measured number is how fast
    the substrate grinds through cells.  Returns the cell throughput
    (``throughput_ips`` = completed sweep cells per second) and the
    shard count the server reported, so callers can tag the numbers
    by configuration.
    """
    probe = Client(url)
    status, health = probe.request("GET", "/v1/health")
    if status != 200:
        raise RuntimeError(f"health probe failed: {status} {health}")
    shards = health.get("shards", {}).get("count", 0)
    specs = [
        {"workload": workload, "n_threads": n_threads,
         "seed": 7000 + i, "warp_sizes": list(warp_sizes)}
        for i in range(jobs)
    ]
    pending = list(reversed(specs))
    lock = threading.Lock()
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients)

    def worker() -> None:
        try:
            client = Client(url)
            barrier.wait()
            while True:
                with lock:
                    if not pending:
                        break
                    spec = pending.pop()
                submit_and_wait(client, spec, endpoint="/v1/sweep")
            client.close()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    probe.close()
    if errors:
        raise RuntimeError(f"saturation client failed: {errors[0]}")
    cells = jobs * len(warp_sizes)
    return {
        "jobs": jobs,
        "clients": clients,
        "warp_sizes": list(warp_sizes),
        "cells": cells,
        "shards": shards,
        "elapsed_s": elapsed,
        "throughput_ips": cells / elapsed if elapsed else 0.0,
    }


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``samples`` (nearest-rank)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_load(url: str, workload: str, n_threads: int, requests: int,
             clients: int) -> Dict[str, Any]:
    """Run the cold/warm/burst phases against ``url``; return metrics."""
    probe = Client(url)
    status, health = probe.request("GET", "/v1/health")
    if status != 200:
        raise RuntimeError(f"health probe failed: {status} {health}")

    specs = [
        {"workload": workload, "n_threads": n_threads, "seed": 100 + i}
        for i in range(requests)
    ]

    t_start = time.perf_counter()
    cold = [submit_and_wait(probe, spec)[0] for spec in specs]
    warm = [submit_and_wait(probe, spec)[0] for spec in specs]

    # Burst: `clients` threads race one identical, never-seen spec.
    burst_spec = {"workload": workload, "n_threads": n_threads,
                  "seed": 424242}
    _, before = probe.request("GET", "/v1/health")
    latencies: List[float] = [0.0] * clients
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients)

    def burst(slot: int) -> None:
        try:
            client = Client(url)
            barrier.wait()
            latencies[slot] = submit_and_wait(client, burst_spec)[0]
            client.close()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=burst, args=(slot,))
               for slot in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise RuntimeError(f"burst client failed: {errors[0]}")
    elapsed = time.perf_counter() - t_start

    _, after = probe.request("GET", "/v1/health")
    burst_coalesced = (after["requests"]["coalesced"]
                      - before["requests"]["coalesced"])
    burst_analyses = executions_of(after) - executions_of(before)
    total = 2 * requests + clients
    cold_p50 = percentile(cold, 0.50)
    warm_p50 = percentile(warm, 0.50)
    probe.close()
    return {
        "workload": workload,
        "n_threads": n_threads,
        "requests": total,
        "throughput_ips": total / elapsed if elapsed else 0.0,
        "cold_p50_s": cold_p50,
        "cold_p95_s": percentile(cold, 0.95),
        "warm_p50_s": warm_p50,
        "warm_p95_s": percentile(warm, 0.95),
        "warm_speedup": (cold_p50 / warm_p50) if warm_p50 else 0.0,
        "burst_clients": clients,
        "burst_coalesced": burst_coalesced,
        "burst_analyses": burst_analyses,
        "coalesce_hit_rate": after["coalesce_hit_rate"],
    }


def spawn_server(cache_dir: Optional[str],
                 shards: int = 0) -> Tuple[subprocess.Popen, str]:
    """Boot ``python -m repro serve --port 0``; returns (proc, url).

    Reads the child's stdout until the machine-readable
    ``SERVE_URL=...`` line appears (or the child exits).  ``shards``
    is forwarded as ``--shards`` (0 keeps the in-process session).
    """
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    cmd += ["--cache-dir", cache_dir] if cache_dir else ["--no-cache"]
    if shards:
        cmd += ["--shards", str(shards)]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60.0
    banner: List[str] = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        if line.startswith("SERVE_URL="):
            return proc, line.split("=", 1)[1].strip()
    proc.terminate()
    raise RuntimeError("server did not print SERVE_URL=...; output:\n"
                       + "".join(banner))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="Writes --out as JSON; see docs/SERVING.md.")
    parser.add_argument("--url", default=None,
                        help="base URL of a running server")
    parser.add_argument("--spawn", action="store_true",
                        help="spawn 'python -m repro serve --port 0' and "
                             "load-test it")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory for --spawn (default: "
                             "no cache)")
    parser.add_argument("--workload", default="vectoradd",
                        help="catalog workload to submit (default "
                             "vectoradd)")
    parser.add_argument("--threads", type=int, default=32,
                        help="logical threads per job (default 32)")
    parser.add_argument("--requests", type=int, default=6,
                        help="distinct cold submits (default 6; each is "
                             "also resubmitted warm)")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent clients in the coalescing burst "
                             "(default 6)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration (2 requests, "
                             "3 clients, 16 threads)")
    parser.add_argument("--shards", type=int, default=0,
                        help="forwarded to --spawn as 'serve --shards N' "
                             "(default 0: in-process session)")
    parser.add_argument("--saturate", type=int, default=0, metavar="JOBS",
                        help="additionally drive JOBS distinct cold "
                             "sweeps from --clients threads and report "
                             "the cell throughput")
    parser.add_argument("--out", default=None,
                        help="write the metrics JSON here")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.clients, args.threads = 2, 3, 16
    if not args.url and not args.spawn:
        parser.error("need --url or --spawn")

    proc = None
    url = args.url
    try:
        if proc is None and not url:
            proc, url = spawn_server(args.cache_dir, shards=args.shards)
        print(f"load-testing {url} "
              f"({args.requests} cold+warm, {args.clients}-client burst)")
        metrics = run_load(url, args.workload, args.threads,
                           args.requests, args.clients)
        if args.saturate:
            saturation = run_saturation(url, args.workload, args.threads,
                                        args.saturate, args.clients)
            metrics["saturation"] = saturation
            print(f"saturation:     {saturation['cells']} cells over "
                  f"{saturation['clients']} clients x "
                  f"{saturation['shards']} shards -> "
                  f"{saturation['throughput_ips']:.2f} cells/s")
    finally:
        if proc is not None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    print(f"throughput:     {metrics['throughput_ips']:8.2f} req/s")
    print(f"cold p50/p95:   {metrics['cold_p50_s'] * 1e3:8.2f} / "
          f"{metrics['cold_p95_s'] * 1e3:.2f} ms")
    print(f"warm p50/p95:   {metrics['warm_p50_s'] * 1e3:8.2f} / "
          f"{metrics['warm_p95_s'] * 1e3:.2f} ms  "
          f"({metrics['warm_speedup']:.1f}x)")
    print(f"burst:          {metrics['burst_clients']} clients -> "
          f"{metrics['burst_analyses']} analysis, "
          f"{metrics['burst_coalesced']} coalesced")
    print(f"coalesce rate:  {metrics['coalesce_hit_rate']:8.2%}")

    if metrics["burst_analyses"] > 1:
        print("FAIL: burst ran more than one underlying analysis",
              file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as out:
            json.dump({"serve_load": metrics}, out, indent=2,
                      sort_keys=True)
            out.write("\n")
        print(f"metrics written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
