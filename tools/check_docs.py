#!/usr/bin/env python
"""Execute the code fences of the repo's documentation.

Extracts every ```python and ```bash fence from the checked documents
and runs it, so examples can never drift from the shipped package:

* ``python`` fences run via :func:`exec`, each in a fresh namespace,
  with the CWD set to a scratch directory.
* ``bash`` fences run line by line; every line must start with
  ``threadfuser``, which is rewritten to ``<this interpreter> -m
  repro`` so the check does not depend on the console script being on
  PATH.

Other fence languages (``text``, ``json``, ...) are ignored.

Usage: python tools/check_docs.py [doc.md ...]
Defaults to docs/OBSERVABILITY.md, docs/PERFORMANCE.md, and
docs/ROBUSTNESS.md.
"""

import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DOCS = [
    os.path.join(REPO, "docs", "OBSERVABILITY.md"),
    os.path.join(REPO, "docs", "PERFORMANCE.md"),
    os.path.join(REPO, "docs", "ROBUSTNESS.md"),
]

FENCE_RE = re.compile(
    r"^```(\w+)[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def extract_fences(path):
    """Yield ``(language, code, line_number)`` for each fence in a file."""
    with open(path, "r", encoding="utf-8") as inp:
        text = inp.read()
    for match in FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        yield match.group(1), match.group(2), line


def run_python(code, label):
    namespace = {"__name__": "__main__", "__doc_fence__": label}
    exec(compile(code, label, "exec"), namespace)


def run_bash(code, label):
    for raw in code.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if not line.startswith("threadfuser"):
            raise SystemExit(
                f"{label}: only 'threadfuser ...' lines are runnable in "
                f"bash fences, got: {line!r}"
            )
        argv = [sys.executable, "-m", "repro"] + line.split()[1:]
        subprocess.run(argv, check=True, stdout=subprocess.DEVNULL)


def check_document(path):
    failures = 0
    n_run = 0
    for language, code, line in extract_fences(path):
        if language not in ("python", "bash"):
            continue
        label = f"{os.path.relpath(path, REPO)}:{line}"
        n_run += 1
        try:
            if language == "python":
                run_python(code, label)
            else:
                run_bash(code, label)
        except Exception as exc:  # noqa: BLE001 - report and keep going
            failures += 1
            print(f"FAIL {label} ({language}): {exc}")
        else:
            print(f"ok   {label} ({language})")
    return n_run, failures


def main(argv):
    docs = argv or DEFAULT_DOCS
    sys.path.insert(0, os.path.join(REPO, "src"))
    total = failed = 0
    # Run inside a scratch CWD so examples that write telemetry.json or
    # create cache dirs never dirty the working tree.
    with tempfile.TemporaryDirectory() as scratch:
        os.chdir(scratch)
        env_src = os.path.join(REPO, "src")
        existing = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = (
            env_src + os.pathsep + existing if existing else env_src
        )
        for doc in docs:
            n_run, failures = check_document(os.path.abspath(
                doc if os.path.isabs(doc) else os.path.join(REPO, doc)))
            total += n_run
            failed += failures
        os.chdir(REPO)
    print(f"{total - failed}/{total} fences passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
