#!/usr/bin/env python
"""Execute the code fences of the repo's documentation.

Extracts every ```python and ```bash fence from the checked documents
and runs it, so examples can never drift from the shipped package:

* ``python`` fences run via :func:`exec`, each in a fresh namespace,
  with the CWD set to a scratch directory.
* ``bash`` fences run line by line; every line must start with
  ``threadfuser`` (rewritten to ``<this interpreter> -m repro`` so the
  check does not depend on the console script being on PATH) or
  ``python tools/`` (run from the repo root, so fences can demonstrate
  the repo's own tooling).

Other fence languages (``text``, ``json``, ...) are ignored.

Beyond the fences, two API-hygiene audits run over the newest public
surfaces:

* every ``__all__`` symbol of the :data:`DOCSTRING_MODULES` -- and
  every public method of the public classes among them -- must have a
  docstring;
* every ``__all__`` symbol of the :data:`API_DOC_MODULES` must be
  mentioned in ``docs/API.md``.

Usage: python tools/check_docs.py [doc.md ...]
Defaults to docs/OBSERVABILITY.md, docs/PERFORMANCE.md,
docs/ROBUSTNESS.md, docs/SERVING.md, docs/ARCHITECTURE.md, and
docs/INDEX.md.  Passing explicit documents skips the API audits
(fences only).
"""

import inspect
import os
import re
import shlex
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DOCS = [
    os.path.join(REPO, "docs", "OBSERVABILITY.md"),
    os.path.join(REPO, "docs", "PERFORMANCE.md"),
    os.path.join(REPO, "docs", "ROBUSTNESS.md"),
    os.path.join(REPO, "docs", "SERVING.md"),
    os.path.join(REPO, "docs", "ARCHITECTURE.md"),
    os.path.join(REPO, "docs", "INDEX.md"),
]

#: Modules whose public surface must be fully docstringed.
DOCSTRING_MODULES = ["repro.serve", "repro.pool", "repro.core.vector",
                     "repro.index"]

#: Modules whose public surface must be mentioned in docs/API.md.
API_DOC_MODULES = ["repro.serve", "repro.index"]

FENCE_RE = re.compile(
    r"^```(\w+)[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def extract_fences(path):
    """Yield ``(language, code, line_number)`` for each fence in a file."""
    with open(path, "r", encoding="utf-8") as inp:
        text = inp.read()
    for match in FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        yield match.group(1), match.group(2), line


def run_python(code, label):
    namespace = {"__name__": "__main__", "__doc_fence__": label}
    exec(compile(code, label, "exec"), namespace)


def run_bash(code, label):
    for raw in code.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("threadfuser"):
            argv = [sys.executable, "-m", "repro"] + shlex.split(line)[1:]
            subprocess.run(argv, check=True, stdout=subprocess.DEVNULL)
        elif line.startswith("python tools/"):
            argv = [sys.executable] + [
                os.path.join(REPO, part) if part.startswith("tools/")
                else part
                for part in shlex.split(line)[1:]
            ]
            subprocess.run(argv, check=True, cwd=REPO,
                           stdout=subprocess.DEVNULL)
        else:
            raise SystemExit(
                f"{label}: only 'threadfuser ...' and 'python tools/...' "
                f"lines are runnable in bash fences, got: {line!r}"
            )


def check_document(path):
    failures = 0
    n_run = 0
    for language, code, line in extract_fences(path):
        if language not in ("python", "bash"):
            continue
        label = f"{os.path.relpath(path, REPO)}:{line}"
        n_run += 1
        try:
            if language == "python":
                run_python(code, label)
            else:
                run_bash(code, label)
        except Exception as exc:  # noqa: BLE001 - report and keep going
            failures += 1
            print(f"FAIL {label} ({language}): {exc}")
        else:
            print(f"ok   {label} ({language})")
    return n_run, failures


def _missing_docstrings(module):
    """Public ``__all__`` symbols (and their public methods) lacking docs."""
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name, None)
        if obj is None or not callable(obj):
            # Constants document themselves through API.md and comments.
            continue
        if not inspect.getdoc(obj):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                fn = member
                if isinstance(member, (staticmethod, classmethod)):
                    fn = member.__func__
                elif isinstance(member, property):
                    fn = member.fget
                if not callable(fn):
                    continue
                if not inspect.getdoc(fn):
                    missing.append(f"{module.__name__}.{name}.{attr}")
    return missing


def check_docstrings():
    """Audit :data:`DOCSTRING_MODULES`; returns (n_checked, failures)."""
    import importlib

    failures = 0
    checked = 0
    for module_name in DOCSTRING_MODULES:
        checked += 1
        module = importlib.import_module(module_name)
        missing = _missing_docstrings(module)
        if missing:
            failures += 1
            print(f"FAIL docstrings {module_name}: missing on "
                  + ", ".join(missing))
        else:
            print(f"ok   docstrings {module_name} "
                  f"({len(getattr(module, '__all__', []))} public symbols)")
    return checked, failures


def check_api_coverage():
    """Every public serve symbol appears in docs/API.md."""
    import importlib

    api_path = os.path.join(REPO, "docs", "API.md")
    with open(api_path, "r", encoding="utf-8") as inp:
        api_text = inp.read()
    failures = 0
    checked = 0
    for module_name in API_DOC_MODULES:
        checked += 1
        module = importlib.import_module(module_name)
        missing = [name for name in getattr(module, "__all__", [])
                   if name not in api_text]
        if missing:
            failures += 1
            print(f"FAIL api-coverage {module_name}: not in docs/API.md: "
                  + ", ".join(missing))
        else:
            print(f"ok   api-coverage {module_name} in docs/API.md")
    return checked, failures


def main(argv):
    docs = argv or DEFAULT_DOCS
    sys.path.insert(0, os.path.join(REPO, "src"))
    total = failed = 0
    # Run inside a scratch CWD so examples that write telemetry.json or
    # create cache dirs never dirty the working tree.
    with tempfile.TemporaryDirectory() as scratch:
        os.chdir(scratch)
        env_src = os.path.join(REPO, "src")
        existing = os.environ.get("PYTHONPATH")
        os.environ["PYTHONPATH"] = (
            env_src + os.pathsep + existing if existing else env_src
        )
        for doc in docs:
            n_run, failures = check_document(os.path.abspath(
                doc if os.path.isabs(doc) else os.path.join(REPO, doc)))
            total += n_run
            failed += failures
        os.chdir(REPO)
    if not argv:
        n, f = check_docstrings()
        total += n
        failed += f
        n, f = check_api_coverage()
        total += n
        failed += f
    print(f"{total - failed}/{total} checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
