#!/usr/bin/env python
"""Compare two BENCH_*.json files and fail on regressions.

Flattens both files into dotted numeric keys (``workloads.nbody.speedup``)
and compares every metric present in both.  Direction is inferred from
the key name:

* lower-is-better: keys ending in ``_s`` (wall-clock seconds);
* higher-is-better: keys ending in ``_ips``, ``speedup``,
  ``hit_rate``, ``efficiency``, or ``_fraction``;
* everything else (counts, configuration echoes) is reported when it
  changes but never fails the run.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json \
        [--max-regression PCT] [--only SUBSTR ...] [--quiet]
    python tools/bench_compare.py --list-metrics BENCH.json [...]

``--only SUBSTR`` (repeatable) restricts the comparison to flattened
keys containing any given substring.  CI uses it to gate on
machine-independent ratio metrics (``--only speedup``) while ignoring
absolute wall-clock numbers measured on different hardware.

Exit-code contract (stable for scripting/CI):

* **0** -- comparison ran and no directional metric regressed beyond
  ``--max-regression`` percent (default 10); also the
  ``--list-metrics`` success path;
* **1** -- the comparison ran and at least one directional metric
  regressed beyond the threshold;
* **2** -- an input file is missing, unreadable, or malformed JSON
  (reported on stderr; distinct from "regression found").

Keys present in only one file are reported but never fatal, so
workloads can be added or retired without breaking the comparison.

``--list-metrics`` prints every tracked (flattened) metric of the given
file(s) with its inferred direction instead of comparing -- the
documentation enumerates tracked metrics through this flag rather than
hand-maintained tables.

The flattening and direction rules are shared with the sqlite result
index (:mod:`repro.index`) -- ``threadfuser index ingest``/``history``
track the same metric names this tool compares, so a two-file diff and
the multi-point trajectory can never disagree about what a metric is
called or which way is better.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.index import (  # noqa: E402  (path bootstrap above)
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    flatten_numeric as flatten,
    metric_direction as direction,
)


def compare(baseline, current, max_regression):
    """Return (report lines, regression lines) for two flat dicts."""
    lines = []
    regressions = []
    for key in sorted(set(baseline) | set(current)):
        if key not in baseline:
            lines.append(f"  new      {key} = {current[key]:g}")
            continue
        if key not in current:
            lines.append(f"  removed  {key} (was {baseline[key]:g})")
            continue
        before, after = baseline[key], current[key]
        if before == after:
            continue
        sign = direction(key)
        if sign == 0:
            lines.append(f"  changed  {key}: {before:g} -> {after:g}")
            continue
        if before == 0:
            lines.append(f"  changed  {key}: {before:g} -> {after:g} "
                         "(zero baseline, not scored)")
            continue
        # Positive delta_pct always means "got worse".
        delta_pct = (before - after) / before * 100.0 * sign
        verdict = "worse" if delta_pct > 0 else "better"
        line = (f"  {verdict:<8} {key}: {before:g} -> {after:g} "
                f"({abs(delta_pct):.1f}% {verdict})")
        lines.append(line)
        if delta_pct > max_regression:
            regressions.append(line.strip())
    return lines, regressions


def restrict(flat, only):
    """Keep the keys containing any of the ``only`` substrings."""
    if not only:
        return flat
    return {key: value for key, value in flat.items()
            if any(substr in key for substr in only)}


def list_metrics(paths, only=None):
    """Print every flattened metric of ``paths`` with its direction.

    Returns the exit code: 0, or 2 when a file is unreadable
    (matching the contract in the module docstring).
    """
    labels = {-1: "lower-is-better", 1: "higher-is-better", 0: "neutral"}
    for path in paths:
        flat = _load(path)
        if flat is None:
            return 2
        flat = restrict(flat, only)
        print(f"{path}: {len(flat)} tracked metric(s)")
        for key in sorted(flat):
            print(f"  {labels[direction(key)]:<16} {key} = {flat[key]:g}")
    return 0


def _load(path):
    try:
        with open(path) as fh:
            return flatten(json.load(fh))
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}",
              file=sys.stderr)
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; fail on regressions.",
        epilog="Exit codes: 0 no regression (or --list-metrics ok); "
               "1 a directional metric regressed beyond --max-regression; "
               "2 missing/unreadable/malformed input.")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="baseline BENCH_*.json")
    parser.add_argument("current", nargs="?", default=None,
                        help="current BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=10.0,
                        metavar="PCT",
                        help="tolerated per-metric regression in percent "
                             "(default: %(default)s)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="SUBSTR",
                        help="compare only flattened keys containing this "
                             "substring (repeatable; e.g. --only speedup "
                             "gates ratio metrics only)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only regressions")
    parser.add_argument("--list-metrics", action="store_true",
                        help="list the tracked metrics (with inferred "
                             "direction) of the given file(s) instead of "
                             "comparing")
    args = parser.parse_args(argv)

    if args.list_metrics:
        paths = [p for p in (args.baseline, args.current) if p]
        if not paths:
            parser.error("--list-metrics needs at least one BENCH file")
        return list_metrics(paths, only=args.only)
    if args.baseline is None or args.current is None:
        parser.error("need BASELINE.json and CURRENT.json "
                     "(or --list-metrics FILE)")

    baseline = _load(args.baseline)
    current = _load(args.current)
    if baseline is None or current is None:
        return 2
    baseline = restrict(baseline, args.only)
    current = restrict(current, args.only)

    lines, regressions = compare(baseline, current, args.max_regression)
    if not args.quiet:
        print(f"comparing {args.current} against {args.baseline} "
              f"(threshold {args.max_regression:g}%)")
        for line in lines:
            print(line)
        if not lines:
            print("  no differences")
    if regressions:
        print(f"{len(regressions)} metric(s) regressed beyond "
              f"{args.max_regression:g}%:")
        for line in regressions:
            print(f"  {line}")
        return 1
    if args.quiet:
        print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
