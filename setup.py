"""Setup shim.

The execution environment has no ``wheel`` package and no network, so
``pip install -e .`` (PEP 660) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` / legacy editable installs work offline.
"""

from setuptools import setup

setup()
