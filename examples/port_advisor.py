#!/usr/bin/env python
"""Developer use case (paper Sec. V-A): should I port this service to a GPU?

Replays the paper's HDSearch-Midtier case study end to end:

1. quick zero-effort estimate -- SIMT efficiency of the stock service;
2. per-function report -- pinpoints ``getpoint`` (a FLANN library routine)
   as the divergence bottleneck, exactly like the paper's Fig. 7;
3. the paper's code fix (uniform top-10 computation) -- efficiency
   recovers from single digits to ~90%+;
4. speedup projection through the cycle-level SIMT simulator before and
   after the fix.

Run:  python examples/port_advisor.py
"""

from repro.session import AnalysisSession
from repro.simulator import project_speedup
from repro.workloads import get_workload

N_REQUESTS = 96

SESSION = AnalysisSession()


def analyze(name: str):
    workload = get_workload(name)
    instance = SESSION.build(name, N_REQUESTS)
    traces = SESSION.trace(name, n_threads=N_REQUESTS)
    report = SESSION.analyze(name, n_threads=N_REQUESTS)
    speedup = project_speedup(
        traces, instance.program,
        launch_threads=workload.paper_simt_threads,
    )
    return report, speedup


def main() -> None:
    print("=" * 72)
    print("Step 1-2: stock HDSearch mid tier -- quick estimate + "
          "per-function report")
    print("=" * 72)
    stock, stock_speedup = analyze("hdsearch_mid")
    print(stock.format_text())

    bottleneck = stock.per_function()[0]
    print()
    print(f"--> bottleneck: '{bottleneck.name}' generates "
          f"{bottleneck.instruction_share:.0%} of all instructions at "
          f"{bottleneck.efficiency:.0%} SIMT efficiency.")
    print("    (The paper traces this to the data-dependent push_back "
          "loop in FLANN's")
    print("     getpoint -- Listing 1 -- whose bucket sizes vary wildly "
          "across requests.)")

    print()
    print("=" * 72)
    print("Step 3-4: after the paper's fix (uniform top-10 computation)")
    print("=" * 72)
    fixed, fixed_speedup = analyze("hdsearch_mid_fixed")
    print(fixed.format_text())

    print()
    print(f"SIMT efficiency: {stock.simt_efficiency:6.1%}  ->  "
          f"{fixed.simt_efficiency:6.1%}")
    print(f"projected GPU speedup vs 20-core CPU: "
          f"{stock_speedup.speedup:6.2f}x  ->  {fixed_speedup.speedup:6.2f}x")
    print()
    print("Verdict: as-is the service is a poor GPU candidate; with a "
          "one-function change")
    print("it becomes worth porting -- identified without writing a "
          "line of CUDA.")


if __name__ == "__main__":
    main()
