#!/usr/bin/env python
"""Compiler-effects study (paper Sec. IV / Fig. 5): how gcc optimization
levels perturb the analyzer's agreement with SIMT hardware.

Compiles the VectorAdd correlation kernel at O0-O3 with the IR-level
pass pipeline, traces each binary, and compares the analyzer's estimates
against direct lock-step execution of the CUDA twin on the GPU oracle.

Run:  python examples/compiler_effects.py
"""

from repro.gpuref import LockstepGPU
from repro.optlevels import OPT_LEVELS
from repro.session import AnalysisSession

N_THREADS = 96


def main() -> None:
    # The session's transform stage recompiles the same workload at each
    # level; traces and reports are cached per (workload, opt_level).
    session = AnalysisSession()
    instance = session.build("vectoradd", N_THREADS)

    gpu = LockstepGPU(instance.gpu.program, warp_size=32)
    instance.gpu.setup(gpu)
    oracle = gpu.run_kernel(instance.gpu.kernel,
                            instance.gpu.args_per_thread)

    print("VectorAdd: analyzer estimates per optimization level vs "
          "SIMT hardware (oracle)")
    print(f"{'binary':<8} {'instrs':>9} {'SIMT eff':>9} {'heap txns':>10} "
          f"{'stack txns':>11}")
    print(f"{'oracle':<8} {'-':>9} {oracle.simt_efficiency:>9.1%} "
          f"{oracle.heap_transactions:>10} {oracle.stack_transactions:>11}")
    for level in OPT_LEVELS:
        traces = session.trace("vectoradd", n_threads=N_THREADS,
                               opt_level=level)
        report = session.analyze("vectoradd", n_threads=N_THREADS,
                                 opt_level=level)
        print(f"{level:<8} {traces.total_instructions:>9} "
              f"{report.simt_efficiency:>9.1%} "
              f"{report.heap_transactions:>10} "
              f"{report.stack_transactions:>11}")
    print()
    print("What to look for (the paper's Fig. 5 mechanisms):")
    print(" * O0 triples the instruction count and floods the stack "
          "(memory-resident variables);")
    print(" * O1 keeps the naive heap accumulator -> heap traffic above "
          "the CUDA binary's;")
    print(" * O2/O3 promote the accumulator into a register, converging "
          "on the hardware counts;")
    print(" * unrolling (O3) trims dynamic branches, which on divergent "
          "code makes traces look")
    print("   *more* convergent than the hardware -- the efficiency "
          "over-estimate of Fig. 5a.")


if __name__ == "__main__":
    main()
