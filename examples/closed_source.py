#!/usr/bin/env python
"""Closed-source analysis: traces in, insight out.

The paper emphasizes that ThreadFuser "can be applied to any CPU binary,
even closed source": the analyzer needs only the dynamic trace file, not
the program.  This example plays both sides of that wall:

* a "vendor" machine runs a proprietary service and ships a trace file;
* an "analyst" loads the file -- with no access to the program -- and
  produces the full SIMT report, including the function-level bottleneck
  breakdown (function *names* come from the trace's call events, exactly
  what PIN records from the symbol table).

Run:  python examples/closed_source.py
"""

import os
import tempfile

from repro.core import analyze_traces
from repro.session import AnalysisSession
from repro.tracer import load_traces, save_traces


def vendor_side(path: str) -> None:
    """The party with the binary: run it traced, ship the trace file."""
    session = AnalysisSession()
    traces = session.trace("dsb_usertag", n_threads=96)
    save_traces(traces, path)
    print(f"[vendor]  traced {len(traces)} requests "
          f"({traces.total_instructions} instructions) -> {path} "
          f"({os.path.getsize(path) // 1024} KiB)")


def analyst_side(path: str) -> None:
    """The party without source or binary: trace file only."""
    traces = load_traces(path)  # note: no program handed over
    print(f"[analyst] loaded {len(traces)} logical threads, "
          f"traced fraction {traces.traced_fraction():.1%}")
    for warp_size in (8, 16, 32):
        report = analyze_traces(traces, warp_size=warp_size)
        print(f"[analyst] warp {warp_size:>2}: "
              f"SIMT efficiency {report.simt_efficiency:6.1%}")
    report = analyze_traces(traces, warp_size=32)
    print("[analyst] per-function breakdown (from trace call events):")
    for fr in report.per_function():
        print(f"          {fr.name:<16} {fr.instruction_share:>6.1%} "
              f"of instructions at {fr.efficiency:>6.1%} efficiency")
    hot = report.divergence_hotspots(top=3)
    print("[analyst] divergence hotspots (function, block address, splits):")
    for function, addr, count, _label in hot:
        print(f"          {function:<16} {addr:#010x}  {count}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "service.trace.jsonl")
        vendor_side(path)
        analyst_side(path)
    print()
    print("No source, no binary -- the trace alone supports the whole "
          "first-order analysis.")


if __name__ == "__main__":
    main()
