#!/usr/bin/env python
"""Quickstart: analyze a MIMD program's SIMT behaviour in ~40 lines.

Builds a small multithreaded program (each thread sums a slice of an
array, with a data-dependent extra step), runs it on the MIMD machine
under the tracer, and prints the ThreadFuser report: SIMT efficiency,
per-function breakdown and memory divergence.

Run:  python examples/quickstart.py
"""

from repro import analyze_program
from repro.isa import Mem
from repro.program import ProgramBuilder


def build_program():
    b = ProgramBuilder()
    data = b.data("values", 8 * 512)

    with b.function("normalize", args=["x"]) as f:
        r = f.reg()
        f.mod(r, f.a(0), 97)
        f.mul(r, r, 3)
        f.ret(r)

    with b.function("worker", args=["tid"]) as f:
        acc = f.reg()
        i = f.reg()
        lo = f.reg()
        hi = f.reg()
        f.mov(acc, 0)
        f.mul(lo, f.a(0), 8)
        f.add(hi, lo, 8)

        def body():
            v = f.reg()
            f.load(v, Mem(None, disp=data.value, index=i, scale=8))
            # Data-dependent extra work: large values get normalized.
            f.if_then(v, ">", 150,
                      lambda: f.call(v, "normalize", [v]))
            f.add(acc, acc, v)

        f.for_range(i, lo, hi, body)
        f.ret(acc)

    return b, b.build(), data.value


def main() -> None:
    builder, program, data_addr = build_program()
    values = [(17 * i * i + 3 * i) % 251 for i in range(512)]

    report = analyze_program(
        program,
        spawns=[("worker", [t], None) for t in range(64)],
        roots=["worker"],
        setup=lambda m: m.memory.write_words(data_addr, values),
        warp_size=32,
        workload="quickstart",
    )
    print(report.format_text())
    print()
    print("Interpretation: the conditional call to 'normalize' only "
          "activates for some lanes,")
    print("so its per-function efficiency is low while the rest of the "
          "worker stays convergent.")


if __name__ == "__main__":
    main()
