#!/usr/bin/env python
"""Architect use case (paper Sec. V-B): explore SIMT designs with MIMD
software that was never written for a GPU.

Three studies on workloads from the catalog:

1. warp-width sweep (8/16/32) -- how much SIMT efficiency is left on the
   table at each width, per workload class;
2. intra-warp lock emulation -- the synchronization cost of fusing
   independent requests into warps;
3. a small CPU-like SIMT machine (8-wide warps, high clock, low-latency
   caches -- the Simty/SIMT-X design point) vs the RTX3070-class GPU,
   evaluated with the same warp traces.

Run:  python examples/architect_study.py
"""

from repro.core import AnalyzerConfig
from repro.cpusim import CPUSimulator, xeon_e5_2630
from repro.session import AnalysisSession
from repro.simulator import GPUSimulator, rtx3070, small_simt_cpu
from repro.tracegen import generate_kernel_trace

WORKLOADS = ["nbody", "memcached", "dsb_text", "pigz"]
N_THREADS = 96


def main() -> None:
    # One session shares traces and DCFG/IPDOM tables across all three
    # studies; jobs=2 generates the cold traces concurrently.
    session = AnalysisSession(jobs=2)
    traced = session.trace_many(WORKLOADS, n_threads=N_THREADS)

    print("Study 1: SIMT efficiency vs warp width")
    print(f"{'workload':<14} {'w=8':>8} {'w=16':>8} {'w=32':>8}")
    for name in WORKLOADS:
        sweep = session.sweep(name, (8, 16, 32), n_threads=N_THREADS)
        print(f"{name:<14} " + " ".join(
            f"{sweep[w].simt_efficiency:8.1%}" for w in (8, 16, 32)))
    print("-> narrower warps recover efficiency on divergent workloads;"
          " uniform ones are insensitive.\n")

    print("Study 2: intra-warp lock serialization (warp size 32)")
    print(f"{'workload':<14} {'no locks':>10} {'emulated':>10}")
    for name in WORKLOADS:
        off = session.analyze(name, n_threads=N_THREADS).simt_efficiency
        on = session.analyze(
            name, n_threads=N_THREADS,
            config=AnalyzerConfig(emulate_locks=True),
        ).simt_efficiency
        print(f"{name:<14} {off:>10.1%} {on:>10.1%}")
    print("-> fine-grained locking keeps the fusion penalty small.\n")

    print("Study 3: RTX3070-class GPU vs a small CPU-like SIMT machine")
    cpu_model = CPUSimulator(xeon_e5_2630())
    print(f"{'workload':<14} {'GPU(32-wide)':>14} {'SIMT-CPU(8-wide)':>18}")
    for name in WORKLOADS:
        instance = session.build(name, N_THREADS)
        traces = traced[name]
        cpu_cycles = cpu_model.run(traces, instance.program).cycles
        cpu_seconds = cpu_cycles / (2.6e9)
        row = [name]
        for config, width in ((rtx3070(), 32), (small_simt_cpu(), 8)):
            kernel = generate_kernel_trace(traces, instance.program,
                                           warp_size=width)
            stats = GPUSimulator(config).run(kernel, replicate=8)
            seconds = stats.seconds(config.clock_ghz)
            row.append(cpu_seconds * 8 / seconds)
        print(f"{row[0]:<14} {row[1]:>13.2f}x {row[2]:>17.2f}x")
    print("-> divergent general-purpose code favours the narrow "
          "high-clock SIMT design;")
    print("   regular compute favours the wide GPU -- the design space "
          "the paper opens.")


if __name__ == "__main__":
    main()
