#!/usr/bin/env python
"""Architect use case (paper Sec. V-B): explore SIMT designs with MIMD
software that was never written for a GPU.

Three studies on workloads from the catalog:

1. warp-width sweep (8/16/32) -- how much SIMT efficiency is left on the
   table at each width, per workload class;
2. intra-warp lock emulation -- the synchronization cost of fusing
   independent requests into warps;
3. a small CPU-like SIMT machine (8-wide warps, high clock, low-latency
   caches -- the Simty/SIMT-X design point) vs the RTX3070-class GPU,
   evaluated with the same warp traces.

Run:  python examples/architect_study.py
"""

from repro.core import analyze_traces
from repro.cpusim import CPUSimulator, xeon_e5_2630
from repro.simulator import GPUSimulator, rtx3070, small_simt_cpu
from repro.tracegen import generate_kernel_trace
from repro.workloads import get_workload, trace_instance

WORKLOADS = ["nbody", "memcached", "dsb_text", "pigz"]
N_THREADS = 96


def main() -> None:
    traced = {}
    for name in WORKLOADS:
        instance = get_workload(name).instantiate(N_THREADS)
        traced[name] = (instance, trace_instance(instance)[0])

    print("Study 1: SIMT efficiency vs warp width")
    print(f"{'workload':<14} {'w=8':>8} {'w=16':>8} {'w=32':>8}")
    for name, (_instance, traces) in traced.items():
        effs = [analyze_traces(traces, warp_size=w).simt_efficiency
                for w in (8, 16, 32)]
        print(f"{name:<14} " + " ".join(f"{e:8.1%}" for e in effs))
    print("-> narrower warps recover efficiency on divergent workloads;"
          " uniform ones are insensitive.\n")

    print("Study 2: intra-warp lock serialization (warp size 32)")
    print(f"{'workload':<14} {'no locks':>10} {'emulated':>10}")
    for name, (_instance, traces) in traced.items():
        off = analyze_traces(traces, warp_size=32).simt_efficiency
        on = analyze_traces(traces, warp_size=32,
                            emulate_locks=True).simt_efficiency
        print(f"{name:<14} {off:>10.1%} {on:>10.1%}")
    print("-> fine-grained locking keeps the fusion penalty small.\n")

    print("Study 3: RTX3070-class GPU vs a small CPU-like SIMT machine")
    cpu_model = CPUSimulator(xeon_e5_2630())
    print(f"{'workload':<14} {'GPU(32-wide)':>14} {'SIMT-CPU(8-wide)':>18}")
    for name, (instance, traces) in traced.items():
        cpu_cycles = cpu_model.run(traces, instance.program).cycles
        cpu_seconds = cpu_cycles / (2.6e9)
        row = [name]
        for config, width in ((rtx3070(), 32), (small_simt_cpu(), 8)):
            kernel = generate_kernel_trace(traces, instance.program,
                                           warp_size=width)
            stats = GPUSimulator(config).run(kernel, replicate=8)
            seconds = stats.seconds(config.clock_ghz)
            row.append(cpu_seconds * 8 / seconds)
        print(f"{row[0]:<14} {row[1]:>13.2f}x {row[2]:>17.2f}x")
    print("-> divergent general-purpose code favours the narrow "
          "high-clock SIMT design;")
    print("   regular compute favours the wide GPU -- the design space "
          "the paper opens.")


if __name__ == "__main__":
    main()
