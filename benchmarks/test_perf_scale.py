"""Parallel-substrate scaling: persistent shared-memory pool vs fork.

Measures warm-call replay wall clock at paper-scale thread counts
(512-4096 logical threads, vs the 64-96 of the other benchmarks) for
``jobs`` 1/2/4/8 on both parallel substrates:

* ``pool="fork"``: the per-call fork pool -- a fresh
  ``ProcessPoolExecutor`` per ``analyze()``, traces inherited
  copy-on-write, per-warp metrics pickled back;
* ``pool="shared"`` (the default): the persistent :mod:`repro.pool`
  workers -- spawned once, traces attached zero-copy from a
  shared-memory column arena, worker-resident signature-keyed memo
  reused across calls.

The workload is synthetic SPMD at scale: every thread replays the
vectoradd kernel's token stream with thread-private memory addresses,
so lane signatures are unique (no intra-call memo shortcut -- each
warp really replays) while repeated calls see identical content (the
cross-call amortization the persistent substrate exists for).  The
"warm call" protocol matches the serving-loop shape from ROADMAP item
2: the first call pays spawn+attach, then repeated analyze() calls
over the same traces are timed.

Results go to ``benchmarks/results/perf_scale.txt`` and the
machine-readable ``BENCH_scale.json`` at the repo root (gated by
``tools/bench_compare.py``).

Two modes:

* full (default): the complete thread-count x jobs grid, best-of-2;
  asserts the acceptance target -- >= 1.3x warm-call speedup over the
  fork pool at jobs=4 for every 512+ thread count -- plus
  bit-identical reports across serial/fork/shared and zero leaked
  shared-memory segments.
* smoke (``THREADFUSER_PERF_SMOKE=1``): 128 threads, jobs=2, one
  round, a generous floor -- a CI canary, not a measurement.
"""

import json
import os
import pickle
import time

from conftest import emit, run_once

import repro.pool as pool_mod
from repro.core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from repro.tracer.events import TraceSet
from repro.workloads import get_workload, trace_instance

SMOKE = os.environ.get("THREADFUSER_PERF_SMOKE") == "1"

THREAD_COUNTS = [128] if SMOKE else [512, 1024, 2048, 4096]
JOBS = [2] if SMOKE else [1, 2, 4, 8]
WARP_SIZE = 32
ROUNDS = 1 if SMOKE else 2

#: Full-mode acceptance (ISSUE 6): warm shared-pool calls at jobs=4
#: must beat the per-call fork pool by this factor on 512+ threads.
FULL_MIN_WARM_SPEEDUP = 1.3

#: Smoke floor: the shared substrate must not be drastically slower.
SMOKE_MIN_WARM_SPEEDUP = 0.3


def _canonical(report):
    return pickle.dumps(report)


def _scaled_traces(n_threads):
    """The vectoradd kernel stream tiled to ``n_threads`` SPMD lanes.

    Control flow is identical across lanes (one DCFG, convergent
    replay) but every memory address is offset by a thread-private
    stride, so each lane's packed columns -- and therefore its content
    signature -- are unique: no two warps share a memo key within one
    call, and the measured speedup is substrate overhead, not the
    intra-call memo shortcut.
    """
    source, _ = trace_instance(get_workload("vectoradd").instantiate(1))
    tokens = list(source.threads[0].tokens)
    root = source.threads[0].root
    scaled = TraceSet(workload=f"scaled-{n_threads}")
    for tid in range(n_threads):
        offset = tid * 64
        scaled.new_thread(tid, root).tokens = [
            (kind, addr, n_ins,
             tuple((slot, store, mem_addr + offset, size)
                   for slot, store, mem_addr, size in mems))
            for kind, addr, n_ins, mems in tokens
        ]
    return scaled


def _timed_calls(analyzer, traces, dcfgs, rounds):
    """Best wall clock over ``rounds`` analyze() calls (plus report)."""
    best = float("inf")
    report = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        report = analyzer.analyze(traces, dcfgs=dcfgs)
        best = min(best, time.perf_counter() - t0)
    return best, report


def _measure(n_threads):
    cfg = AnalyzerConfig(warp_size=WARP_SIZE)
    traces = _scaled_traces(n_threads)
    serial = ThreadFuserAnalyzer(cfg, jobs=1)
    dcfgs = serial.prepare(traces)
    serial_s, serial_report = _timed_calls(serial, traces, dcfgs, ROUNDS)
    reference = _canonical(serial_report)

    cells = {}
    for jobs in JOBS:
        fork = ThreadFuserAnalyzer(cfg, jobs=jobs, pool="fork")
        fork_s, fork_report = _timed_calls(fork, traces, dcfgs, ROUNDS)
        assert _canonical(fork_report) == reference, (n_threads, jobs)

        shared = ThreadFuserAnalyzer(cfg, jobs=jobs, pool="shared")
        # Warm-up call: pays worker spawn (first time only), arena
        # build+attach, and the memo-filling replay.
        cold0 = time.perf_counter()
        warm_report = shared.analyze(traces, dcfgs=dcfgs)
        cold_s = time.perf_counter() - cold0
        assert _canonical(warm_report) == reference, (n_threads, jobs)
        shared_s, shared_report = _timed_calls(shared, traces, dcfgs,
                                               ROUNDS)
        assert _canonical(shared_report) == reference, (n_threads, jobs)

        cells[jobs] = {
            "fork_warm_s": fork_s,
            "shared_cold_s": cold_s,
            "shared_warm_s": shared_s,
            "warm_speedup": fork_s / shared_s,
        }
    snapshot = pool_mod.stats_snapshot()
    row = {
        "serial_s": serial_s,
        "jobs": cells,
        "arena_bytes": snapshot.get("arena_bytes", 0),
    }
    pool_mod.release_arena(traces)
    return row


def test_substrate_scaling(benchmark):
    def experiment():
        return {n: _measure(n) for n in THREAD_COUNTS}

    rows = run_once(benchmark, experiment)

    mode = "smoke" if SMOKE else "full"
    lines = [
        "Parallel-substrate scaling (persistent shared-memory pool vs "
        f"per-call fork; {mode} mode, warp {WARP_SIZE}, "
        f"best of {ROUNDS} warm calls)",
        "{:>8} {:>5} {:>10} {:>10} {:>11} {:>10} {:>8}".format(
            "threads", "jobs", "serial", "fork", "shared-cold",
            "shared", "speedup"),
        "{:>8} {:>5} {:>10} {:>10} {:>11} {:>10} {:>8}".format(
            "", "", "ms", "ms", "ms", "ms", ""),
    ]
    for n_threads, row in rows.items():
        for jobs, cell in row["jobs"].items():
            lines.append(
                f"{n_threads:>8} {jobs:>5} "
                f"{row['serial_s'] * 1e3:>10.1f} "
                f"{cell['fork_warm_s'] * 1e3:>10.1f} "
                f"{cell['shared_cold_s'] * 1e3:>11.1f} "
                f"{cell['shared_warm_s'] * 1e3:>10.1f} "
                f"{cell['warm_speedup']:>7.2f}x"
            )
    emit("perf_scale_smoke" if SMOKE else "perf_scale", "\n".join(lines))

    if not SMOKE:
        payload = {
            "mode": mode,
            "warp_size": WARP_SIZE,
            "rounds": ROUNDS,
            "unit": "seconds of warm analyze() wall clock",
            "baseline": "per-call fork pool (pool='fork') at the same "
                        "jobs/threads",
            "scales": {
                str(n): {
                    "serial_s": row["serial_s"],
                    "arena_bytes": row["arena_bytes"],
                    "jobs": {
                        str(jobs): cell
                        for jobs, cell in row["jobs"].items()
                    },
                }
                for n, row in rows.items()
            },
        }
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "BENCH_scale.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # Zero-leak acceptance: every arena this benchmark opened was
    # released; nothing remains for atexit to reap.
    assert pool_mod.live_arenas() == []
    assert pool_mod.leaked_segments() == []

    if SMOKE:
        for row in rows.values():
            for cell in row["jobs"].values():
                assert cell["warm_speedup"] >= SMOKE_MIN_WARM_SPEEDUP, cell
    else:
        for n_threads, row in rows.items():
            cell = row["jobs"][4]
            assert cell["warm_speedup"] >= FULL_MIN_WARM_SPEEDUP, (
                f"{n_threads} threads: warm shared-pool speedup "
                f"{cell['warm_speedup']:.2f}x at jobs=4 is below the "
                f"{FULL_MIN_WARM_SPEEDUP}x acceptance target"
            )
