"""Serving-layer benchmark: throughput, latency, and coalescing.

Boots an in-process :class:`repro.serve.AnalysisServer` (background
event-loop thread, tempdir artifact cache) and drives it through the
load generator's client helpers (``tools/serve_load.py``):

* **cold** -- distinct submits awaited to completion: end-to-end
  analysis latency through the HTTP surface;
* **warm** -- the same specs resubmitted: answered from the job
  registry / artifact store without touching the queue;
* **burst** -- N clients racing one identical new spec: the
  fingerprint-keyed registry must run exactly one underlying
  analysis, every other submit coalescing onto it (or landing
  registry-warm just after it completes).

Results go to ``benchmarks/results/perf_serve.txt`` and the
machine-readable ``BENCH_serve.json`` at the repo root (gated by
``tools/bench_compare.py``; ``--list-metrics BENCH_serve.json``
enumerates the tracked keys).

Two modes:

* full (default): asserts the ISSUE 7 acceptance targets -- warm
  submits >= 5x faster than cold at p50, and the N-client burst
  triggers exactly 1 machine execution;
* smoke (``THREADFUSER_PERF_SMOKE=1``): tiny request counts and a
  generous latency floor -- a CI canary, not a measurement.  The
  exactly-one-analysis property is asserted in both modes (it is a
  correctness property, not a performance target).
"""

import json
import os
import sys
import tempfile
import threading
import time

from conftest import emit, run_once

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "tools"))

import serve_load  # noqa: E402  (tools/serve_load.py)

from repro.serve import start_in_background  # noqa: E402

SMOKE = os.environ.get("THREADFUSER_PERF_SMOKE") == "1"

WORKLOAD = "vectoradd"
N_THREADS = 16 if SMOKE else 64
REQUESTS = 2 if SMOKE else 8
BURST_CLIENTS = 3 if SMOKE else 8

#: Full-mode acceptance (ISSUE 7): warm submits answer from the
#: registry/store at least this many times faster than a cold analysis.
FULL_MIN_WARM_SPEEDUP = 5.0

#: Smoke floor: warm must merely not be slower than cold.
SMOKE_MIN_WARM_SPEEDUP = 1.0


def _measure():
    with tempfile.TemporaryDirectory(prefix="tf-serve-bench-") as cache:
        handle = start_in_background(cache_dir=cache, jobs=1)
        try:
            client = serve_load.Client(handle.url)
            specs = [
                {"workload": WORKLOAD, "n_threads": N_THREADS,
                 "seed": 100 + i}
                for i in range(REQUESTS)
            ]
            t_start = time.perf_counter()
            cold = [serve_load.submit_and_wait(client, spec)[0]
                    for spec in specs]
            warm = [serve_load.submit_and_wait(client, spec)[0]
                    for spec in specs]

            burst_spec = {"workload": WORKLOAD, "n_threads": N_THREADS,
                          "seed": 424242}
            executions_before = handle.server.session.executions
            latencies = [0.0] * BURST_CLIENTS
            errors = []
            barrier = threading.Barrier(BURST_CLIENTS)

            def burst(slot):
                try:
                    peer = serve_load.Client(handle.url)
                    barrier.wait()
                    latencies[slot] = serve_load.submit_and_wait(
                        peer, burst_spec)[0]
                    peer.close()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=burst, args=(slot,))
                       for slot in range(BURST_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            elapsed = time.perf_counter() - t_start
            burst_analyses = (handle.server.session.executions
                              - executions_before)

            _status, health = client.request("GET", "/v1/health")
            client.close()
        finally:
            handle.close()

    total = 2 * REQUESTS + BURST_CLIENTS
    cold_p50 = serve_load.percentile(cold, 0.50)
    warm_p50 = serve_load.percentile(warm, 0.50)
    return {
        "workload": WORKLOAD,
        "n_threads": N_THREADS,
        "requests": total,
        "throughput_ips": total / elapsed if elapsed else 0.0,
        "cold_p50_s": cold_p50,
        "cold_p95_s": serve_load.percentile(cold, 0.95),
        "warm_p50_s": warm_p50,
        "warm_p95_s": serve_load.percentile(warm, 0.95),
        "warm_speedup": (cold_p50 / warm_p50) if warm_p50 else 0.0,
        "burst_clients": BURST_CLIENTS,
        "burst_analyses": burst_analyses,
        "burst_p95_s": serve_load.percentile(latencies, 0.95),
        "coalesce_hit_rate": health["coalesce_hit_rate"],
    }


def test_serve_throughput(benchmark):
    metrics = run_once(benchmark, _measure)

    mode = "smoke" if SMOKE else "full"
    lines = [
        f"Serving layer ({mode} mode, {WORKLOAD} @ {N_THREADS} threads, "
        f"{REQUESTS} cold+warm, {BURST_CLIENTS}-client burst)",
        f"  throughput:     {metrics['throughput_ips']:8.2f} req/s",
        f"  cold p50/p95:   {metrics['cold_p50_s'] * 1e3:8.2f} / "
        f"{metrics['cold_p95_s'] * 1e3:.2f} ms",
        f"  warm p50/p95:   {metrics['warm_p50_s'] * 1e3:8.2f} / "
        f"{metrics['warm_p95_s'] * 1e3:.2f} ms  "
        f"({metrics['warm_speedup']:.1f}x)",
        f"  burst:          {metrics['burst_clients']} clients -> "
        f"{metrics['burst_analyses']} analysis",
        f"  coalesce rate:  {metrics['coalesce_hit_rate']:8.2%}",
    ]
    emit("perf_serve_smoke" if SMOKE else "perf_serve", "\n".join(lines))

    if not SMOKE:
        payload = {
            "mode": mode,
            "unit": "seconds of HTTP submit-to-done wall clock",
            "baseline": "cold submits (unique seeds) through the same "
                        "server",
            "serve": metrics,
        }
        with open(os.path.join(ROOT, "BENCH_serve.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # Exactly-one-analysis is a correctness property of the
    # fingerprint-keyed registry; assert it in both modes.
    assert metrics["burst_analyses"] == 1, metrics

    floor = SMOKE_MIN_WARM_SPEEDUP if SMOKE else FULL_MIN_WARM_SPEEDUP
    assert metrics["warm_speedup"] >= floor, (
        f"warm submits were only {metrics['warm_speedup']:.2f}x faster "
        f"than cold (target {floor}x)"
    )
