"""Serving-layer benchmark: throughput, latency, and coalescing.

Boots an in-process :class:`repro.serve.AnalysisServer` (background
event-loop thread, tempdir artifact cache) and drives it through the
load generator's client helpers (``tools/serve_load.py``):

* **cold** -- distinct submits awaited to completion: end-to-end
  analysis latency through the HTTP surface;
* **warm** -- the same specs resubmitted: answered from the job
  registry / artifact store without touching the queue;
* **burst** -- N clients racing one identical new spec: the
  fingerprint-keyed registry must run exactly one underlying
  analysis, every other submit coalescing onto it (or landing
  registry-warm just after it completes).

Results go to ``benchmarks/results/perf_serve.txt`` and the
machine-readable ``BENCH_serve.json`` at the repo root (gated by
``tools/bench_compare.py``; ``--list-metrics BENCH_serve.json``
enumerates the tracked keys).

On top of the single-session latency shapes, a **(clients x shards)
saturation sweep** boots the server at shards in {1, 2, 4} (fresh
cache each; ``repro.shards.ShardPool`` session worker processes) and
drives distinct cold sweep jobs from concurrent clients -- the
measured scaling curve of the horizontal serve layer
(``saturation.shards.<N>.throughput_ips`` and the derived
``saturation.shards2_speedup`` / ``saturation.shards4_speedup``).
The burst is replayed against the sharded server too: exactly one
machine execution must happen even when the duplicate submits land on
different shards.

Two modes:

* full (default): asserts the ISSUE 7 acceptance targets -- warm
  submits >= 5x faster than cold at p50, the N-client burst triggers
  exactly 1 machine execution -- plus the ISSUE 10 scaling target:
  shards=4 cold-sweep throughput >= 2x shards=1 **when the machine
  has >= 4 cores** (``saturation.cores`` records what the numbers
  were measured on; on fewer cores only a no-collapse floor applies,
  since the workers time-slice one core);
* smoke (``THREADFUSER_PERF_SMOKE=1``): tiny request counts and a
  generous latency floor -- a CI canary, not a measurement.  The
  exactly-one-analysis property is asserted in both modes (it is a
  correctness property, not a performance target).
"""

import json
import os
import sys
import tempfile
import threading
import time

from conftest import emit, run_once

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "tools"))

import serve_load  # noqa: E402  (tools/serve_load.py)

from repro.serve import start_in_background  # noqa: E402

SMOKE = os.environ.get("THREADFUSER_PERF_SMOKE") == "1"

WORKLOAD = "vectoradd"
N_THREADS = 16 if SMOKE else 64
REQUESTS = 2 if SMOKE else 8
BURST_CLIENTS = 3 if SMOKE else 8

#: The saturation sweep's shard axis, job count, and client threads.
SAT_SHARDS = (1, 2) if SMOKE else (1, 2, 4)
SAT_JOBS = 2 if SMOKE else 8
SAT_CLIENTS = 2 if SMOKE else 4
SAT_WIDTHS = (8, 16) if SMOKE else (8, 16, 32)

#: Saturation cells run heavier than the latency shapes: per-cell
#: compute has to dominate the per-cell dispatch overhead (pipe RTTs,
#: report pickling) or the scaling curve measures IPC, not analysis.
SAT_THREADS = 16 if SMOKE else 256

#: Full-mode acceptance (ISSUE 7): warm submits answer from the
#: registry/store at least this many times faster than a cold analysis.
FULL_MIN_WARM_SPEEDUP = 5.0

#: Smoke floor: warm must merely not be slower than cold.
SMOKE_MIN_WARM_SPEEDUP = 1.0

#: Full-mode acceptance (ISSUE 10): shards=4 cold-sweep throughput
#: >= 2x shards=1.  Only enforceable where 4 workers actually get
#: cores -- gated on ``os.cpu_count() >= 4`` (true on the CI runners).
FULL_MIN_SHARDS4_SPEEDUP = 2.0

#: Everywhere else (including single-core containers, where N workers
#: time-slice one core and every cross-shard cell re-reads its trace
#: from the store), sharding must merely not collapse throughput.
MIN_NO_COLLAPSE_SPEEDUP = 0.3


def _measure():
    with tempfile.TemporaryDirectory(prefix="tf-serve-bench-") as cache:
        handle = start_in_background(cache_dir=cache, jobs=1)
        try:
            client = serve_load.Client(handle.url)
            specs = [
                {"workload": WORKLOAD, "n_threads": N_THREADS,
                 "seed": 100 + i}
                for i in range(REQUESTS)
            ]
            t_start = time.perf_counter()
            cold = [serve_load.submit_and_wait(client, spec)[0]
                    for spec in specs]
            warm = [serve_load.submit_and_wait(client, spec)[0]
                    for spec in specs]

            burst_spec = {"workload": WORKLOAD, "n_threads": N_THREADS,
                          "seed": 424242}
            executions_before = handle.server.session.executions
            latencies = [0.0] * BURST_CLIENTS
            errors = []
            barrier = threading.Barrier(BURST_CLIENTS)

            def burst(slot):
                try:
                    peer = serve_load.Client(handle.url)
                    barrier.wait()
                    latencies[slot] = serve_load.submit_and_wait(
                        peer, burst_spec)[0]
                    peer.close()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=burst, args=(slot,))
                       for slot in range(BURST_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            elapsed = time.perf_counter() - t_start
            burst_analyses = (handle.server.session.executions
                              - executions_before)

            _status, health = client.request("GET", "/v1/health")
            client.close()
        finally:
            handle.close()

    total = 2 * REQUESTS + BURST_CLIENTS
    cold_p50 = serve_load.percentile(cold, 0.50)
    warm_p50 = serve_load.percentile(warm, 0.50)
    return {
        "workload": WORKLOAD,
        "n_threads": N_THREADS,
        "requests": total,
        "throughput_ips": total / elapsed if elapsed else 0.0,
        "cold_p50_s": cold_p50,
        "cold_p95_s": serve_load.percentile(cold, 0.95),
        "warm_p50_s": warm_p50,
        "warm_p95_s": serve_load.percentile(warm, 0.95),
        "warm_speedup": (cold_p50 / warm_p50) if warm_p50 else 0.0,
        "burst_clients": BURST_CLIENTS,
        "burst_analyses": burst_analyses,
        "burst_p95_s": serve_load.percentile(latencies, 0.95),
        "coalesce_hit_rate": health["coalesce_hit_rate"],
    }


def _sharded_burst(handle):
    """Burst of identical submits against a sharded server.

    Returns the number of machine executions the burst triggered,
    measured through ``/v1/health``'s top-level ``executions`` total
    (the only counter that sees the shard processes).  Must be 1:
    coalescing is parent-side, so duplicates absorb into one in-flight
    fingerprint no matter which shard owns the computation.
    """
    burst_spec = {"workload": WORKLOAD, "n_threads": N_THREADS,
                  "seed": 515151}
    probe = serve_load.Client(handle.url)
    _status, before = probe.request("GET", "/v1/health")
    errors = []
    barrier = threading.Barrier(BURST_CLIENTS)

    def burst():
        try:
            peer = serve_load.Client(handle.url)
            barrier.wait()
            serve_load.submit_and_wait(peer, burst_spec)
            peer.close()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=burst)
               for _ in range(BURST_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    _status, after = probe.request("GET", "/v1/health")
    probe.close()
    return (serve_load.executions_of(after)
            - serve_load.executions_of(before))


def _measure_saturation():
    """The (clients x shards) scaling curve plus the sharded burst."""
    by_shards = {}
    burst_analyses = None
    for shards in SAT_SHARDS:
        with tempfile.TemporaryDirectory(prefix="tf-serve-sat-") as cache:
            handle = start_in_background(cache_dir=cache, jobs=1,
                                         shards=shards)
            try:
                by_shards[str(shards)] = serve_load.run_saturation(
                    handle.url, WORKLOAD, SAT_THREADS,
                    jobs=SAT_JOBS, clients=SAT_CLIENTS,
                    warp_sizes=SAT_WIDTHS)
                if shards == 2:
                    burst_analyses = _sharded_burst(handle)
            finally:
                handle.close()
    base = by_shards["1"]["throughput_ips"]
    out = {
        "cores": os.cpu_count() or 1,
        "clients": SAT_CLIENTS,
        "jobs": SAT_JOBS,
        "shards": by_shards,
        "sharded_burst_analyses": burst_analyses,
    }
    for shards in SAT_SHARDS[1:]:
        speedup = (by_shards[str(shards)]["throughput_ips"] / base
                   if base else 0.0)
        out[f"shards{shards}_speedup"] = speedup
    return out


def test_serve_throughput(benchmark):
    metrics = run_once(benchmark, _measure)
    saturation = _measure_saturation()

    mode = "smoke" if SMOKE else "full"
    lines = [
        f"Serving layer ({mode} mode, {WORKLOAD} @ {N_THREADS} threads, "
        f"{REQUESTS} cold+warm, {BURST_CLIENTS}-client burst)",
        f"  throughput:     {metrics['throughput_ips']:8.2f} req/s",
        f"  cold p50/p95:   {metrics['cold_p50_s'] * 1e3:8.2f} / "
        f"{metrics['cold_p95_s'] * 1e3:.2f} ms",
        f"  warm p50/p95:   {metrics['warm_p50_s'] * 1e3:8.2f} / "
        f"{metrics['warm_p95_s'] * 1e3:.2f} ms  "
        f"({metrics['warm_speedup']:.1f}x)",
        f"  burst:          {metrics['burst_clients']} clients -> "
        f"{metrics['burst_analyses']} analysis",
        f"  coalesce rate:  {metrics['coalesce_hit_rate']:8.2%}",
        f"  saturation ({SAT_CLIENTS} clients, {SAT_JOBS} sweep jobs, "
        f"{saturation['cores']} core(s)):",
    ]
    for shards in SAT_SHARDS:
        cell = saturation["shards"][str(shards)]
        speedup = saturation.get(f"shards{shards}_speedup")
        suffix = f"  ({speedup:.2f}x)" if speedup is not None else ""
        lines.append(f"    shards={shards}: "
                     f"{cell['throughput_ips']:8.2f} cells/s{suffix}")
    lines.append(f"  sharded burst:  {BURST_CLIENTS} clients -> "
                 f"{saturation['sharded_burst_analyses']} analysis "
                 f"(shards=2)")
    emit("perf_serve_smoke" if SMOKE else "perf_serve", "\n".join(lines))

    if not SMOKE:
        payload = {
            "mode": mode,
            "unit": "seconds of HTTP submit-to-done wall clock",
            "baseline": "cold submits (unique seeds) through the same "
                        "server",
            "serve": metrics,
            "saturation": saturation,
        }
        with open(os.path.join(ROOT, "BENCH_serve.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # Exactly-one-analysis is a correctness property of the
    # fingerprint-keyed registry; assert it in both modes -- and it
    # must hold across shard boundaries (parent-side coalescing).
    assert metrics["burst_analyses"] == 1, metrics
    assert saturation["sharded_burst_analyses"] == 1, saturation

    floor = SMOKE_MIN_WARM_SPEEDUP if SMOKE else FULL_MIN_WARM_SPEEDUP
    assert metrics["warm_speedup"] >= floor, (
        f"warm submits were only {metrics['warm_speedup']:.2f}x faster "
        f"than cold (target {floor}x)"
    )

    # Scaling: the hard >= 2x target needs real cores under the
    # workers; anywhere else (1-core containers) sharding must merely
    # not collapse throughput under the process/IPC overhead.
    for shards in SAT_SHARDS[1:]:
        speedup = saturation[f"shards{shards}_speedup"]
        assert speedup >= MIN_NO_COLLAPSE_SPEEDUP, (
            f"shards={shards} collapsed cold-sweep throughput to "
            f"{speedup:.2f}x of shards=1"
        )
    if not SMOKE and saturation["cores"] >= 4:
        assert saturation["shards4_speedup"] >= \
            FULL_MIN_SHARDS4_SPEEDUP, (
                f"shards=4 was only "
                f"{saturation['shards4_speedup']:.2f}x over shards=1 "
                f"(target {FULL_MIN_SHARDS4_SPEEDUP}x on "
                f"{saturation['cores']} cores)"
            )
