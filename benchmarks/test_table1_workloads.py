"""Table I: the studied workload catalog with per-suite grouping and the
paper's #SIMT-thread launch sizes (kept as registry metadata; this
reproduction traces a scaled sample, see DESIGN.md)."""

from conftest import emit, run_once

from repro.workloads import all_workloads, correlation_workloads


def test_table1_workload_catalog(benchmark):
    def experiment():
        rows = []
        for w in all_workloads():
            rows.append((w.suite, w.name, w.paper_simt_threads,
                         w.has_gpu_impl, w.description))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Table I: studied workloads "
        "(#SIMT threads = the paper's launch size)",
        "{:<16} {:<22} {:>12} {:>6}".format(
            "suite", "workload", "#SIMT thr", "GPU?"),
    ]
    for suite, name, threads, gpu, _desc in sorted(rows):
        lines.append(
            f"{suite:<16} {name:<22} {threads:>12} {'yes' if gpu else '':>6}"
        )
    lines.append(f"total workloads: {len(rows)}  "
                 f"correlation set: {len(correlation_workloads())}")
    emit("table1_workloads", "\n".join(lines))

    assert len(rows) >= 36
    assert len(correlation_workloads()) == 11
    suites = {r[0] for r in rows}
    assert len(suites) == 7  # Rodinia/Paropoly/Micro/uSuite/DSB/ParSec/Other
