"""Shared fixtures for the benchmark harness.

Each ``test_figN_*.py`` / ``test_tableN_*.py`` module regenerates one
table or figure of the paper.  Heavy artifacts (traces) are cached at
session scope so figures sharing workloads do not re-trace them, and
every benchmark runs its experiment exactly once via
``benchmark.pedantic(rounds=1)``.

Results are printed to the real stdout (bypassing capture) and written
under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.core import AnalyzerConfig
from repro.session import AnalysisSession
from repro.workloads import all_workloads

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Logical threads traced per workload in the benchmark harness (a scaled
#: sample of the paper's 512-42K launches; see DESIGN.md "Scaling notes").
BENCH_THREADS = 96


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    sys.__stdout__.write(f"\n{text}\n")
    sys.__stdout__.flush()


class TraceCache:
    """Thin facade over a shared :class:`AnalysisSession`.

    Stage outputs (traces, DCFG/IPDOM tables, reports) are memoized by
    the session; set ``THREADFUSER_BENCH_CACHE_DIR`` to also persist
    them across benchmark runs via the on-disk artifact store.
    """

    def __init__(self, session: AnalysisSession = None) -> None:
        self.session = session or AnalysisSession(
            cache_dir=os.environ.get("THREADFUSER_BENCH_CACHE_DIR"),
            jobs=int(os.environ.get("THREADFUSER_BENCH_JOBS", "1")),
        )

    def get(self, name: str, n_threads: int = BENCH_THREADS):
        instance = self.session.build(name, n_threads)
        traces = self.session.trace(name, n_threads=n_threads)
        return instance, traces

    def report(self, name: str, warp_size: int,
               n_threads: int = BENCH_THREADS, emulate_locks: bool = False):
        return self.session.analyze(
            name, n_threads=n_threads,
            config=AnalyzerConfig(warp_size=warp_size,
                                  emulate_locks=emulate_locks),
        )


@pytest.fixture(scope="session")
def traces_cache() -> TraceCache:
    return TraceCache()


@pytest.fixture(scope="session")
def workload_names():
    return [w.name for w in all_workloads()]


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
