"""Figure 7: the HDSearch-Midtier case study.

(a) the per-function distribution of executed instructions -- about half
    land in ``getpoint``;
(b) per-function SIMT efficiency -- ``getpoint``'s data-dependent
    push_back loop is single-digit-efficient and drags the service down,
    while the paper's fix (uniform top-10 computation) recovers the
    whole-service efficiency from ~6-7% to ~90%.
"""

from conftest import emit, run_once

from repro.core import analyze_traces
from repro.workloads import get_workload, trace_instance

N_THREADS = 96
WARP = 32


def test_fig7_hdsearch_midtier(benchmark):
    def experiment():
        out = {}
        for name in ("hdsearch_mid", "hdsearch_mid_fixed"):
            instance = get_workload(name).instantiate(N_THREADS)
            traces, _machine = trace_instance(instance)
            out[name] = analyze_traces(traces, warp_size=WARP)
        return out

    reports = run_once(benchmark, experiment)
    stock = reports["hdsearch_mid"]
    fixed = reports["hdsearch_mid_fixed"]

    lines = [
        "Figure 7: HDSearch-Midtier per-function analysis (warp size 32)",
        "",
        "(a) instruction distribution + (b) per-function efficiency "
        "(stock implementation):",
        "{:<16} {:>10} {:>10}".format("function", "instr%", "SIMT eff"),
    ]
    for fr in stock.per_function():
        lines.append(
            f"{fr.name:<16} {fr.instruction_share:>10.1%} "
            f"{fr.efficiency:>10.1%}"
        )
    lines.append("")
    lines.append(f"stock whole-service efficiency: "
                 f"{stock.simt_efficiency:.1%}")
    lines.append(f"fixed whole-service efficiency: "
                 f"{fixed.simt_efficiency:.1%}   "
                 "(uniform top-10 getpoint, paper Listing 1 fix)")
    emit("fig7_hdsearch", "\n".join(lines))

    per_fn = {fr.name: fr for fr in stock.per_function()}
    # (a) getpoint generates around half the instructions.
    assert 0.35 < per_fn["getpoint"].instruction_share < 0.75
    # (b) getpoint is the divergence bottleneck.
    assert per_fn["getpoint"].efficiency < 0.2
    assert per_fn["handle"].efficiency > 0.9
    # The fix recovers the service: ~6-13% -> ~90%+.
    assert stock.simt_efficiency < 0.2
    assert fixed.simt_efficiency > 0.85
