"""Core execution-engine throughput: compiled vs seed interpreter.

Measures single-process machine throughput (dynamic instructions per
second) for both execution engines over the tracer-overhead workload
set, natively and under the tracer, plus the analyzer's replay
throughput.  Results go to ``benchmarks/results/perf_core.txt`` and the
machine-readable ``BENCH_core.json`` at the repo root.

Two modes:

* full (default): the five tracer-overhead workloads at 64 threads,
  best-of-3; asserts the headline acceptance target -- the compiled
  engine is >= 2x the interpreter on native geomean throughput.
* smoke (``THREADFUSER_PERF_SMOKE=1``): one small workload, best-of-2,
  with deliberately generous floors -- a CI canary against massive
  regressions, not a precision measurement.
"""

import json
import os
import time

from conftest import emit, run_once

from repro.core import analyze_traces
from repro.workloads import get_workload, run_instance, trace_instance

SMOKE = os.environ.get("THREADFUSER_PERF_SMOKE") == "1"

WORKLOADS = ["nbody"] if SMOKE else [
    "nbody", "pigz", "memcached", "streamcluster", "md5",
]
N_THREADS = 32 if SMOKE else 64
ROUNDS = 2 if SMOKE else 3

#: Smoke floors: an order of magnitude of headroom against measured
#: numbers (compiled ~2.5+ M instr/s, ~2x speedup on dev hardware), so
#: only a catastrophic regression or a broken engine trips CI.
SMOKE_MIN_COMPILED_IPS = 300_000.0
SMOKE_MIN_SPEEDUP = 1.15

#: Full-mode acceptance: the compiled engine's reason to exist.
FULL_MIN_GEOMEAN_SPEEDUP = 2.0


def _best_native(workload, engine):
    """Best-of-N native wall time; returns (seconds, instructions)."""
    best = float("inf")
    instructions = 0
    for _ in range(ROUNDS):
        instance = workload.instantiate(N_THREADS)
        t0 = time.perf_counter()
        machine = run_instance(instance, engine=engine)
        best = min(best, time.perf_counter() - t0)
        instructions = machine.total_instructions
    return best, instructions


def _best_traced(workload, engine):
    """Best-of-N traced wall time; returns (seconds, instructions, traces)."""
    best = float("inf")
    instructions = 0
    traces = None
    for _ in range(ROUNDS):
        instance = workload.instantiate(N_THREADS)
        t0 = time.perf_counter()
        traces, machine = trace_instance(instance, engine=engine)
        best = min(best, time.perf_counter() - t0)
        instructions = machine.total_instructions
    return best, instructions, traces


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def test_core_engine_throughput(benchmark):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            workload = get_workload(name)
            interp_s, instructions = _best_native(workload, "interp")
            compiled_s, _ = _best_native(workload, "compiled")
            interp_t, _, _ = _best_traced(workload, "interp")
            compiled_t, _, traces = _best_traced(workload, "compiled")
            t0 = time.perf_counter()
            analyze_traces(traces, warp_size=32)
            analyze_s = time.perf_counter() - t0
            rows[name] = {
                "instructions": instructions,
                "interp_ips": instructions / interp_s,
                "compiled_ips": instructions / compiled_s,
                "speedup": interp_s / compiled_s,
                "interp_traced_ips": instructions / interp_t,
                "compiled_traced_ips": instructions / compiled_t,
                "traced_speedup": interp_t / compiled_t,
                "analyze_s": analyze_s,
            }
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Core engine throughput (native = NullHooks, M instr/s; "
        f"{'smoke' if SMOKE else 'full'} mode, {N_THREADS} threads, "
        f"best of {ROUNDS})",
        "{:<14} {:>10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8}".format(
            "workload", "instrs", "interp", "compiled", "native",
            "interp", "compiled", "traced"),
        "{:<14} {:>10} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8}".format(
            "", "", "native", "native", "spdup", "traced", "traced",
            "spdup"),
    ]
    for name, r in rows.items():
        lines.append(
            f"{name:<14} {r['instructions']:>10} "
            f"{r['interp_ips'] / 1e6:>9.2f} "
            f"{r['compiled_ips'] / 1e6:>9.2f} "
            f"{r['speedup']:>7.2f}x "
            f"{r['interp_traced_ips'] / 1e6:>9.2f} "
            f"{r['compiled_traced_ips'] / 1e6:>9.2f} "
            f"{r['traced_speedup']:>7.2f}x"
        )
    geomean = _geomean([r["speedup"] for r in rows.values()])
    traced_geomean = _geomean([r["traced_speedup"] for r in rows.values()])
    lines.append(
        f"geomean speedup: native {geomean:.2f}x, traced "
        f"{traced_geomean:.2f}x"
    )
    emit("perf_core_smoke" if SMOKE else "perf_core", "\n".join(lines))

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "n_threads": N_THREADS,
        "rounds": ROUNDS,
        "unit": "instructions/second, single process",
        "baseline": "interp (the seed instruction-at-a-time interpreter)",
        "workloads": rows,
        "geomean_native_speedup": geomean,
        "geomean_traced_speedup": traced_geomean,
    }
    if not SMOKE:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "BENCH_core.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    if SMOKE:
        for name, r in rows.items():
            assert r["compiled_ips"] >= SMOKE_MIN_COMPILED_IPS, (
                f"{name}: compiled engine below the smoke floor "
                f"({r['compiled_ips']:.0f} instr/s)"
            )
            assert r["speedup"] >= SMOKE_MIN_SPEEDUP, (
                f"{name}: compiled engine no faster than the interpreter "
                f"({r['speedup']:.2f}x)"
            )
    else:
        assert geomean >= FULL_MIN_GEOMEAN_SPEEDUP, (
            f"compiled engine geomean speedup {geomean:.2f}x is below "
            f"the {FULL_MIN_GEOMEAN_SPEEDUP}x acceptance target"
        )
