"""Artifact-store effectiveness: cold vs warm AnalysisSession timing.

A cold session pays for machine execution (tracing) plus replay; a warm
session serves the finished report straight from the content-addressed
store.  This benchmark records both, per workload, and asserts the warm
path does zero machine execution.
"""

import shutil
import tempfile
import time

from conftest import emit, run_once

from repro.session import AnalysisSession

WORKLOADS = ["vectoradd", "nn", "btree", "dsb_text", "memcached"]
N_THREADS = 64
WARP = 32


def test_cold_vs_warm_session(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="tf-bench-cache-")

    def experiment():
        rows = {}
        for name in WORKLOADS:
            cold = AnalysisSession(cache_dir=cache_dir)
            t0 = time.perf_counter()
            cold.analyze(name, n_threads=N_THREADS)
            cold_s = time.perf_counter() - t0
            assert cold.executions == 1

            warm = AnalysisSession(cache_dir=cache_dir)
            t0 = time.perf_counter()
            warm.analyze(name, n_threads=N_THREADS)
            warm_s = time.perf_counter() - t0
            assert warm.executions == 0, "warm run must not execute"
            rows[name] = (cold_s, warm_s)
        return rows

    try:
        rows = run_once(benchmark, experiment)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    lines = [
        f"AnalysisSession artifact cache, cold vs warm "
        f"({N_THREADS} threads, warp {WARP})",
        "{:<14} {:>10} {:>10} {:>9}".format(
            "workload", "cold(s)", "warm(s)", "speedup"),
    ]
    for name, (cold_s, warm_s) in rows.items():
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        lines.append(f"{name:<14} {cold_s:>10.3f} {warm_s:>10.3f} "
                     f"{speedup:>8.1f}x")
        assert warm_s < cold_s
    lines.append("warm sessions served every report from the store "
                 "(0 machine executions)")
    emit("session_cache_timing", "\n".join(lines))
