"""Ablation: SIMT hardware design space (the architects' use case).

The paper's closing argument: with MIMD software now analyzable, the
design space between multicore CPUs and GPUs opens up (Simty / SIMT-X /
SIMR-class machines).  This ablation runs the same workloads on

* the RTX3070-class GPU (32-wide warps, deep memory system), and
* a small CPU-like SIMT machine (8-wide warps, 3 GHz, low-latency caches),

and also compares the GTO and LRR warp schedulers on the GPU config.
"""

from conftest import emit, run_once

from repro.cpusim import CPUSimulator, xeon_e5_2630
from repro.simulator import GPUSimulator, rtx3070, small_simt_cpu
from repro.tracegen import generate_kernel_trace

WORKLOADS = ["nbody", "blackscholes", "memcached", "dsb_text", "x264",
             "pigz"]
REPLICATE = 8


def test_ablation_simt_designs(benchmark, traces_cache):
    def experiment():
        cpu_model = CPUSimulator(xeon_e5_2630())
        rows = {}
        for name in WORKLOADS:
            instance, traces = traces_cache.get(name)
            cpu_seconds = (
                cpu_model.run(traces, instance.program).cycles * REPLICATE
                / (cpu_model.config.clock_ghz * 1e9)
            )
            results = {}
            for label, config in (
                ("gpu_gto", rtx3070()),
                ("gpu_lrr", rtx3070()),
                ("simt_cpu", small_simt_cpu()),
            ):
                if label == "gpu_lrr":
                    config.scheduler = "lrr"
                kernel = generate_kernel_trace(
                    traces, instance.program, warp_size=config.warp_size
                )
                stats = GPUSimulator(config).run(kernel,
                                                 replicate=REPLICATE)
                seconds = stats.seconds(config.clock_ghz)
                results[label] = cpu_seconds / seconds
            rows[name] = results
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Ablation: SIMT design space "
        "(speedup vs 20-core CPU; same traces on every machine)",
        "{:<14} {:>10} {:>10} {:>12}".format(
            "workload", "GPU(GTO)", "GPU(LRR)", "SIMT-CPU(8w)"),
    ]
    for name, r in rows.items():
        lines.append(
            f"{name:<14} {r['gpu_gto']:>9.2f}x {r['gpu_lrr']:>9.2f}x "
            f"{r['simt_cpu']:>11.2f}x"
        )
    narrow_wins = [
        n for n, r in rows.items() if r["simt_cpu"] > r["gpu_gto"]
    ]
    lines.append(
        "narrow high-clock SIMT machine wins on: "
        + (", ".join(narrow_wins) or "(none)")
    )
    emit("ablation_simt_designs", "\n".join(lines))

    for r in rows.values():
        assert r["gpu_gto"] > 0 and r["gpu_lrr"] > 0 and r["simt_cpu"] > 0
    # Divergent general-purpose code benefits from the narrow design.
    assert rows["pigz"]["simt_cpu"] > rows["pigz"]["gpu_gto"]
    # The scheduler choice is visible but second-order.
    for name, r in rows.items():
        ratio = r["gpu_lrr"] / r["gpu_gto"]
        assert 0.5 < ratio < 2.0, name
