"""Ablation: warp-formation (batching) policy.

The paper notes "different batching algorithms can be explored in the
process of warp formation" (Sec. III).  This ablation compares the three
implemented policies.  ``strided`` deliberately fuses distant threads;
for workloads whose divergence correlates with thread id (trip counts
growing with tid, zipf request mixes), fusing *similar* neighbours
(linear) preserves lock-step better.
"""

from conftest import emit, run_once

from repro.core import analyze_traces

WORKLOADS = ["pigz", "dsb_text", "textsearch_leaf", "freqmine",
             "particlefilter", "memcached"]
POLICIES = ("linear", "cpu_affine", "strided")
WARP = 32


def test_ablation_batching_policy(benchmark, traces_cache):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            _instance, traces = traces_cache.get(name)
            rows[name] = {
                policy: analyze_traces(
                    traces, warp_size=WARP, batching=policy
                ).simt_efficiency
                for policy in POLICIES
            }
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Ablation: warp batching policy (SIMT efficiency, warp 32)",
        "{:<16} {:>9} {:>11} {:>9}".format("workload", *POLICIES),
    ]
    for name, effs in rows.items():
        lines.append(
            f"{name:<16} " + " ".join(
                f"{effs[p]:>{w}.1%}" for p, w in zip(POLICIES, (9, 11, 9))
            )
        )
    deltas = [
        max(effs.values()) - min(effs.values()) for effs in rows.values()
    ]
    lines.append(
        f"max policy effect on a single workload: {max(deltas):.1%}"
    )
    emit("ablation_batching", "\n".join(lines))

    # Sanity: every policy yields a valid efficiency, and batching matters
    # for at least one divergent workload.
    for effs in rows.values():
        for eff in effs.values():
            assert 0 < eff <= 1.0
    assert max(deltas) > 0.01
