"""Ablation: lock-serialization reconvergence point.

The paper: "We select one of the unlock pairs of one of the threads as
the anticipated reconvergence point.  We acknowledge that different
choices of reconvergence points may have varying effects on the control
flow efficiency, but we defer this investigation to future research."

Both choices are implemented; this ablation quantifies the deferred
question: "unlock" reconverges right after the critical section, "exit"
falls back to the enclosing reconvergence point (serializing the
remainder of the region).
"""

from conftest import emit, run_once

from repro.core import analyze_traces

WORKLOADS = ["memcached", "dsb_post", "dsb_urlshort", "fluidanimate",
             "hdsearch_mid"]
WARP = 32


def test_ablation_lock_reconvergence(benchmark, traces_cache):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            _instance, traces = traces_cache.get(name)
            unlock = analyze_traces(
                traces, warp_size=WARP, emulate_locks=True,
                lock_reconvergence="unlock",
            ).simt_efficiency
            exit_ = analyze_traces(
                traces, warp_size=WARP, emulate_locks=True,
                lock_reconvergence="exit",
            ).simt_efficiency
            baseline = analyze_traces(
                traces, warp_size=WARP, emulate_locks=False,
            ).simt_efficiency
            rows[name] = (baseline, unlock, exit_)
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Ablation: lock-serialization reconvergence point "
        "(SIMT efficiency, warp 32, locks emulated)",
        "{:<16} {:>9} {:>12} {:>10}".format(
            "workload", "no-locks", "rpc=unlock", "rpc=exit"),
    ]
    for name, (base, unlock, exit_) in rows.items():
        lines.append(
            f"{name:<16} {base:>9.1%} {unlock:>12.1%} {exit_:>10.1%}"
        )
    emit("ablation_lock_rpc", "\n".join(lines))

    for name, (base, unlock, exit_) in rows.items():
        # Earlier reconvergence can only help (or tie); both cost vs none.
        assert exit_ <= unlock + 1e-9, name
        assert unlock <= base + 1e-9, name
    # The choice is measurable on at least one contended workload.
    assert any(
        unlock - exit_ > 0.005 for _b, unlock, exit_ in rows.values()
    )
