"""Tracing and analysis overhead (paper Sec. III).

The paper's tracer costs "only 2 to 6x the native CPU execution time",
which is what makes the zero-effort estimate cheap.  This benchmark
measures the same ratio on our substrate -- the machine running natively
(NullHooks) vs under the tracer -- plus the analyzer's throughput.
"""

import time

from conftest import emit, run_once

from repro.core import analyze_traces
from repro.workloads import get_workload, run_instance, trace_instance

WORKLOADS = ["nbody", "pigz", "memcached", "streamcluster", "md5"]
N_THREADS = 64


def test_tracer_and_analyzer_overhead(benchmark):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            workload = get_workload(name)
            instance = workload.instantiate(N_THREADS)

            t0 = time.perf_counter()
            machine = run_instance(instance)
            native = time.perf_counter() - t0
            instructions = machine.total_instructions

            instance2 = workload.instantiate(N_THREADS)
            t0 = time.perf_counter()
            traces, _machine = trace_instance(instance2)
            traced = time.perf_counter() - t0

            t0 = time.perf_counter()
            analyze_traces(traces, warp_size=32)
            analysis = time.perf_counter() - t0

            rows[name] = (instructions, native, traced, analysis)
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Tracing / analysis overhead "
        "(paper: tracing costs 2-6x native execution)",
        "{:<14} {:>10} {:>10} {:>10} {:>9} {:>10}".format(
            "workload", "instrs", "native(s)", "traced(s)", "ratio",
            "analyze(s)"),
    ]
    ratios = []
    for name, (instructions, native, traced, analysis) in rows.items():
        ratio = traced / native if native > 0 else float("inf")
        ratios.append(ratio)
        lines.append(
            f"{name:<14} {instructions:>10} {native:>10.3f} "
            f"{traced:>10.3f} {ratio:>8.1f}x {analysis:>10.3f}"
        )
    lines.append(
        f"tracing overhead range: {min(ratios):.1f}x - {max(ratios):.1f}x"
    )
    emit("tracer_overhead", "\n".join(lines))

    # The paper's qualitative claim: tracing is a small constant factor
    # over native execution, cheap enough for zero-effort estimates.
    assert max(ratios) < 10.0
    assert min(ratios) >= 1.0
