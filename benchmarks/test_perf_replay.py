"""Analyzer replay throughput: seed vs packed vs vectorized replay.

Measures analyze-side wall clock for three replay engines -- the seed
tuple replayer (``packed=False, memo=False``), the packed pipeline
(columnar cursors, batched converged runs, DCFG scan dedup,
signature-keyed warp memoization) with ``vector=False``, and the
vectorized bulk-span replayer on top of it -- over the five core
workloads, plus a synthetic replicated-lane workload that exercises the
warp-memo fast path directly.  Results go to
``benchmarks/results/perf_replay.txt`` and the machine-readable
``BENCH_replay.json`` at the repo root.

The packed and vectorized analyzers run in alternating order within
each round: they are the close pair whose ratio gates acceptance, and
interleaving cancels slow drift (thermal, cache warmup) that a
measure-all-of-A-then-all-of-B loop folds into the ratio.

One-time trace *packing* is timed separately (``pack_s``): it is paid
once per trace set and shared by every subsequent analysis, so folding
it into per-analysis replay time would misstate both.

Two modes:

* full (default): five workloads at 64 threads, best-of-3; asserts the
  acceptance targets -- packed replay >= 1.5x geomean over seed replay
  and vectorized replay >= 1.4x geomean over packed replay -- and
  bit-identical reports across all three engines and memo on/off.
* smoke (``THREADFUSER_PERF_SMOKE=1``): one small workload, best-of-2,
  with deliberately generous floors -- a CI canary against massive
  regressions, not a precision measurement.
"""

import json
import os
import pickle
import time

from conftest import emit, run_once

from repro.core import vector
from repro.core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from repro.obs import Recorder
from repro.tracer.events import TraceSet
from repro.workloads import get_workload, trace_instance

SMOKE = os.environ.get("THREADFUSER_PERF_SMOKE") == "1"

WORKLOADS = ["nbody"] if SMOKE else [
    "nbody", "pigz", "memcached", "streamcluster", "md5",
]
N_THREADS = 32 if SMOKE else 64
WARP_SIZE = 32
ROUNDS = 2 if SMOKE else 3

#: Full-mode acceptance: the packed replay pipeline's reason to exist.
FULL_MIN_GEOMEAN_SPEEDUP = 1.5

#: Full-mode acceptance for the vectorized bulk-span path, measured
#: against the packed pipeline it extends (not against seed replay).
FULL_MIN_GEOMEAN_VECTOR = 1.4

#: Smoke floor: packed replay must not be drastically slower than seed
#: replay.  Measured speedups are ~2x; only a broken fast path trips it.
SMOKE_MIN_SPEEDUP = 0.6

#: Smoke floor for vector-over-packed: deliberately below 1.0 -- smoke
#: hardware is noisy and the smoke workload tiny; this only catches a
#: catastrophically broken bulk path.
SMOKE_MIN_VECTOR_SPEEDUP = 0.5


def _canonical(report):
    """One comparable value covering every report observable.

    Pickling is deterministic here (dict insertion orders are part of
    the replay contract), so equal bytes mean bit-identical reports.
    """
    return pickle.dumps(report)


def _best(analyzer, traces):
    best = float("inf")
    report = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        report = analyzer.analyze(traces)
        best = min(best, time.perf_counter() - t0)
    return best, report


def _best_pair(first, second, traces):
    """Best-of-ROUNDS for two analyzers, alternating order each round."""
    bests = {id(first): float("inf"), id(second): float("inf")}
    reports = {}
    for round_no in range(ROUNDS):
        order = (first, second) if round_no % 2 == 0 else (second, first)
        for analyzer in order:
            t0 = time.perf_counter()
            reports[id(analyzer)] = analyzer.analyze(traces)
            bests[id(analyzer)] = min(bests[id(analyzer)],
                                      time.perf_counter() - t0)
    return ((bests[id(first)], reports[id(first)]),
            (bests[id(second)], reports[id(second)]))


def _replicated_traces(n_threads):
    """A trace set whose threads all share one token stream.

    Real workloads give every thread private stack/heap addresses, so
    their warp-memo hit rate is legitimately ~0; this synthetic SPMD
    workload is the memo fast path's showcase: every warp after the
    first replays for free.
    """
    source, _ = trace_instance(get_workload("vectoradd").instantiate(1))
    tokens = list(source.threads[0].tokens)
    root = source.threads[0].root
    replicated = TraceSet(workload="replicated")
    for tid in range(n_threads):
        thread = replicated.new_thread(tid, root)
        thread.tokens = list(tokens)
    return replicated


def _measure(name, traces):
    cfg = AnalyzerConfig(warp_size=WARP_SIZE)
    seed_s, seed_report = _best(
        ThreadFuserAnalyzer(cfg, memo=False, packed=False), traces)

    t0 = time.perf_counter()
    for thread in traces:
        thread.packed()
    pack_s = time.perf_counter() - t0

    packed = ThreadFuserAnalyzer(cfg, vector=False)
    recorder = Recorder()
    vectorized = ThreadFuserAnalyzer(cfg, recorder=recorder)
    ((packed_s, packed_report),
     (vector_s, vector_report)) = _best_pair(packed, vectorized, traces)
    nomemo_report = ThreadFuserAnalyzer(cfg, memo=False).analyze(traces)

    # Bit-identical acceptance: packed, vectorized, and memo replay are
    # invisible optimizations, in any combination.
    assert _canonical(packed_report) == _canonical(seed_report), name
    assert _canonical(vector_report) == _canonical(seed_report), name
    assert _canonical(nomemo_report) == _canonical(seed_report), name

    gauges = recorder.telemetry().gauges
    lookups = gauges.get("memo.warp_lookups", 0)
    hits = gauges.get("memo.warp_hits", 0)
    instructions = vector_report.metrics.thread_instructions
    return {
        "thread_instructions": instructions,
        "seed_replay_s": seed_s,
        "packed_replay_s": packed_s,
        "vector_replay_s": vector_s,
        "pack_s": pack_s,
        "seed_ips": instructions / seed_s,
        "packed_ips": instructions / packed_s,
        "vector_ips": instructions / vector_s,
        "speedup": seed_s / packed_s,
        "vector_speedup": packed_s / vector_s,
        "vector_token_fraction": gauges.get(
            "replay.vector_token_fraction", 0.0),
        "memo_lookups": lookups,
        "memo_hits": hits,
        "memo_hit_rate": hits / lookups if lookups else 0.0,
    }


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def test_replay_throughput(benchmark):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            traces, _ = trace_instance(
                get_workload(name).instantiate(N_THREADS))
            rows[name] = _measure(name, traces)
        # At least two full warps, so the memo path has a hit to show
        # even when smoke mode shrinks N_THREADS to one warp.
        rows["replicated"] = _measure(
            "replicated", _replicated_traces(max(N_THREADS, 2 * WARP_SIZE)))
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Analyzer replay throughput (seed vs packed vs vectorized; "
        f"{'smoke' if SMOKE else 'full'} mode, {N_THREADS} threads, "
        f"warp {WARP_SIZE}, best of {ROUNDS}, "
        f"vector backend {vector.BACKEND})",
        "{:<14} {:>11} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>5}"
        .format("workload", "thread-ins", "seed", "packed", "vector",
                "pack", "spdup", "vspdup", "vfrac", "memo"),
        "{:<14} {:>11} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>5}"
        .format("", "", "ms", "ms", "ms", "ms", "", "", "", "rate"),
    ]
    for name, r in rows.items():
        lines.append(
            f"{name:<14} {r['thread_instructions']:>11} "
            f"{r['seed_replay_s'] * 1e3:>8.1f} "
            f"{r['packed_replay_s'] * 1e3:>8.1f} "
            f"{r['vector_replay_s'] * 1e3:>8.1f} "
            f"{r['pack_s'] * 1e3:>7.1f} "
            f"{r['speedup']:>6.2f}x "
            f"{r['vector_speedup']:>6.2f}x "
            f"{r['vector_token_fraction']:>6.2f} "
            f"{r['memo_hit_rate']:>5.2f}"
        )
    core = [rows[name]["speedup"] for name in WORKLOADS]
    geomean = _geomean(core)
    vector_geomean = _geomean(
        [rows[name]["vector_speedup"] for name in WORKLOADS])
    lines.append(f"geomean speedup (core workloads): {geomean:.2f}x "
                 f"packed/seed, {vector_geomean:.2f}x vector/packed")
    emit("perf_replay_smoke" if SMOKE else "perf_replay",
         "\n".join(lines))

    payload = {
        "mode": "smoke" if SMOKE else "full",
        "n_threads": N_THREADS,
        "warp_size": WARP_SIZE,
        "rounds": ROUNDS,
        "unit": "thread-instructions/second of analyze(), single process",
        "baseline": "seed replay (ThreadFuserAnalyzer(memo=False, "
                    "packed=False)); vector_speedup is measured against "
                    "the packed pipeline (vector=False)",
        "vector_backend": vector.BACKEND,
        "workloads": rows,
        "geomean_speedup": geomean,
        "geomean_vector_speedup": vector_geomean,
    }
    if not SMOKE:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        with open(os.path.join(root, "BENCH_replay.json"), "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # The replicated workload must demonstrate the memo fast path:
    # every warp after the first is a hit.
    replicated = rows["replicated"]
    assert replicated["memo_lookups"] >= 2
    assert replicated["memo_hits"] == replicated["memo_lookups"] - 1

    if SMOKE:
        for name in WORKLOADS:
            assert rows[name]["speedup"] >= SMOKE_MIN_SPEEDUP, (
                f"{name}: packed replay far below seed replay "
                f"({rows[name]['speedup']:.2f}x)"
            )
            assert (rows[name]["vector_speedup"]
                    >= SMOKE_MIN_VECTOR_SPEEDUP), (
                f"{name}: vectorized replay far below packed replay "
                f"({rows[name]['vector_speedup']:.2f}x)"
            )
    else:
        assert geomean >= FULL_MIN_GEOMEAN_SPEEDUP, (
            f"packed replay geomean speedup {geomean:.2f}x is below the "
            f"{FULL_MIN_GEOMEAN_SPEEDUP}x acceptance target"
        )
        assert vector_geomean >= FULL_MIN_GEOMEAN_VECTOR, (
            f"vectorized replay geomean speedup {vector_geomean:.2f}x "
            f"over packed replay is below the {FULL_MIN_GEOMEAN_VECTOR}x "
            f"acceptance target"
        )
