"""Figure 1: estimated SIMT efficiency of all MIMD workloads at warp
sizes 8, 16 and 32.

Expected shape (paper Sec. I / V-B): efficiency declines monotonically
with warp width; nbody/MD5-class workloads stay >95% and nearly flat;
pigz-class workloads are both low and warp-width sensitive.
"""

from conftest import BENCH_THREADS, emit, run_once

WARP_SIZES = (8, 16, 32)


def test_fig1_simt_efficiency(benchmark, traces_cache, workload_names):
    def experiment():
        rows = {}
        for name in workload_names:
            rows[name] = [
                traces_cache.report(name, ws).simt_efficiency
                for ws in WARP_SIZES
            ]
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Figure 1: SIMT efficiency vs warp size "
        f"({BENCH_THREADS} logical threads/workload)",
        "{:<22} {:>8} {:>8} {:>8}".format("workload", "w=8", "w=16", "w=32"),
    ]
    for name in sorted(rows, key=lambda n: -rows[n][2]):
        e8, e16, e32 = rows[name]
        lines.append(
            f"{name:<22} {e8:8.1%} {e16:8.1%} {e32:8.1%}"
        )
    mean32 = sum(r[2] for r in rows.values()) / len(rows)
    lines.append(f"{'MEAN':<22} {'':>8} {'':>8} {mean32:8.1%}")
    emit("fig1_efficiency", "\n".join(lines))

    # Paper-shape assertions.
    for name, (e8, e16, e32) in rows.items():
        assert e8 >= e16 - 1e-9 >= e32 - 2e-9, (name, e8, e16, e32)
    assert rows["nbody"][2] > 0.95
    assert rows["md5"][2] > 0.95
    assert rows["pigz"][2] < 0.45
    assert rows["pigz"][0] > rows["pigz"][2]  # warp-width sensitive
