"""Figure 10: memory transactions per load/store instruction, split by
heap and stack segment (warp size 32).

Expected shape: significant divergence on both segments -- each thread's
private stack defeats coalescing entirely, and the allocator scatters
heap data (AoS layouts and per-request malloc), so transactions per
instruction sit far above the ideal 4x32B for 8-byte accesses.  The
coalesced microbenchmark provides the ideal-floor reference.
"""

from conftest import emit, run_once

from repro.machine import SEG_HEAP, SEG_STACK

WORKLOADS = [
    "mcrouter_mid", "mcrouter_leaf", "memcached",
    "textsearch_mid", "textsearch_leaf",
    "hdsearch_mid", "hdsearch_leaf",
    "dsb_post", "dsb_text", "dsb_urlshort", "dsb_uniqueid",
    "dsb_usertag", "dsb_user",
    "pigz", "md5", "rotate", "vectoradd",
]
WARP = 32
#: Ideal transactions/instr for fully coalesced 8-byte accesses (paper
#: Sec. III: 8x 32B transactions for a 32-thread warp of 8B accesses).
IDEAL_8B = 8.0


def test_fig10_memory_divergence(benchmark, traces_cache):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            report = traces_cache.report(name, WARP)
            rows[name] = (
                report.transactions_per_load_store(SEG_HEAP),
                report.transactions_per_load_store(SEG_STACK),
                report.heap_transactions,
                report.stack_transactions,
            )
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Figure 10: 32B memory transactions per warp load/store "
        "(warp size 32; ideal coalesced 8B = 8.0)",
        "{:<16} {:>10} {:>10} {:>10} {:>10}".format(
            "workload", "heap/ins", "stack/ins", "heap#", "stack#"),
    ]
    for name, (heap_per, stack_per, heap_n, stack_n) in rows.items():
        lines.append(
            f"{name:<16} {heap_per:>10.2f} {stack_per:>10.2f} "
            f"{heap_n:>10} {stack_n:>10}"
        )
    emit("fig10_memdiv", "\n".join(lines))

    # vectoradd is the coalesced floor.
    assert rows["vectoradd"][0] <= IDEAL_8B + 0.5
    # Services with per-request allocations diverge well above ideal
    # (the allocator scatters data chunks in the heap, paper Sec. V-B).
    for name in ("mcrouter_leaf", "dsb_post", "dsb_user"):
        assert rows[name][0] > IDEAL_8B, name
    # Private stacks never coalesce: every active lane its own 32B txn,
    # so stack divergence sits far above the ideal too.
    stackful = [n for n in WORKLOADS if rows[n][1] > 0]
    assert len(stackful) >= 3
    for name in stackful:
        assert rows[name][1] > IDEAL_8B, name
