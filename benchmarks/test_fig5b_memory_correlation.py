"""Figure 5b: memory-transaction correlation vs SIMT hardware, O0-O3.

The paper compares total 32-byte *global* (heap) transactions estimated
by the analyzer against hardware counts, per optimization level, on
log-log axes.  Expected shape: correlation >= 0.96 everywhere; O0
overestimates (memory-resident variables); higher levels keep values in
registers; O1/O2 sit closest to the hardware.
"""

import math

from conftest import emit, run_once

from repro.analysis import mean_absolute_error, pearson
from repro.core import AnalyzerConfig
from repro.gpuref import LockstepGPU
from repro.machine import SEG_HEAP
from repro.optlevels import OPT_LEVELS
from repro.workloads import correlation_workloads

N_THREADS = 96
WARP = 32


def _oracle_heap_txns(instance):
    gpu = LockstepGPU(instance.gpu.program, warp_size=WARP)
    if instance.gpu.setup is not None:
        instance.gpu.setup(gpu)
    report = gpu.run_kernel(instance.gpu.kernel,
                            instance.gpu.args_per_thread)
    return report.heap_transactions


def test_fig5b_memory_correlation(benchmark, traces_cache):
    session = traces_cache.session

    def experiment():
        measured = {}
        predicted = {lvl: {} for lvl in OPT_LEVELS}
        for workload in correlation_workloads():
            instance = session.build(workload.name, N_THREADS)
            measured[workload.name] = _oracle_heap_txns(instance)
            for lvl in OPT_LEVELS:
                report = session.analyze(
                    workload.name, n_threads=N_THREADS, opt_level=lvl,
                    config=AnalyzerConfig(warp_size=WARP),
                )
                predicted[lvl][workload.name] = report.heap_transactions
        return measured, predicted

    measured, predicted = run_once(benchmark, experiment)
    names = sorted(measured)

    lines = [
        "Figure 5b: 32B heap transactions, analyzer (per opt level) vs "
        "SIMT hardware oracle",
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}".format(
            "workload", "oracle", *OPT_LEVELS),
    ]
    for name in names:
        lines.append(
            "{:<16} {:>8} ".format(name, measured[name])
            + " ".join(f"{predicted[l][name]:>8}" for l in OPT_LEVELS)
        )
    summary = {}
    for lvl in OPT_LEVELS:
        # Correlate in log space, as the paper's log-log plot does.
        pred = [math.log10(max(predicted[lvl][n], 1)) for n in names]
        meas = [math.log10(max(measured[n], 1)) for n in names]
        rel_mae = mean_absolute_error(
            [predicted[lvl][n] for n in names],
            [measured[n] for n in names],
            relative=True,
        )
        summary[lvl] = (pearson(pred, meas), rel_mae)
    lines.append("")
    lines.append("{:<6} {:>8} {:>9}".format("level", "correl", "MAE(rel)"))
    for lvl, (corr, mae) in summary.items():
        lines.append(f"{lvl:<6} {corr:>8.3f} {mae:>9.1%}")
    emit("fig5b_memory_correlation", "\n".join(lines))

    # Paper-shape assertions: strong log-log correlation at every level;
    # O0 inflates transaction counts relative to O1.
    for lvl in OPT_LEVELS:
        assert summary[lvl][0] > 0.9, (lvl, summary[lvl])
    o0_total = sum(predicted["O0"].values())
    o1_total = sum(predicted["O1"].values())
    o3_total = sum(predicted["O3"].values())
    assert o0_total >= o1_total >= o3_total
    assert summary["O1"][1] <= summary["O0"][1]
