"""Figure 5a: ThreadFuser SIMT-efficiency correlation vs SIMT hardware
(the GPU oracle) across compiler optimization levels O0-O3.

Expected shape (paper Sec. IV): high Pearson correlation at every level;
O0/O1 track the hardware best (the paper reports 1.0 correlation and a
3% MAE at O1); O3 tends to overestimate efficiency because unrolling
removes apparent divergence from the CPU traces.
"""

from conftest import emit, run_once

from repro.analysis import error_band_summary, mean_absolute_error, pearson
from repro.core import AnalyzerConfig
from repro.gpuref import LockstepGPU
from repro.optlevels import OPT_LEVELS
from repro.workloads import correlation_workloads

N_THREADS = 96
WARP = 32


def _oracle_efficiency(instance):
    gpu = LockstepGPU(instance.gpu.program, warp_size=WARP)
    if instance.gpu.setup is not None:
        instance.gpu.setup(gpu)
    report = gpu.run_kernel(instance.gpu.kernel,
                            instance.gpu.args_per_thread)
    return report.simt_efficiency


def test_fig5a_efficiency_correlation(benchmark, traces_cache):
    session = traces_cache.session

    def experiment():
        measured = {}
        predicted = {lvl: {} for lvl in OPT_LEVELS}
        for workload in correlation_workloads():
            instance = session.build(workload.name, N_THREADS)
            measured[workload.name] = _oracle_efficiency(instance)
            for lvl in OPT_LEVELS:
                report = session.analyze(
                    workload.name, n_threads=N_THREADS, opt_level=lvl,
                    config=AnalyzerConfig(warp_size=WARP),
                )
                predicted[lvl][workload.name] = report.simt_efficiency
        return measured, predicted

    measured, predicted = run_once(benchmark, experiment)
    names = sorted(measured)

    lines = [
        "Figure 5a: SIMT efficiency, analyzer (per gcc opt level) vs "
        "SIMT hardware oracle",
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}".format(
            "workload", "oracle", *OPT_LEVELS),
    ]
    for name in names:
        lines.append(
            "{:<16} {:>8.1%} ".format(name, measured[name])
            + " ".join(f"{predicted[l][name]:>8.1%}" for l in OPT_LEVELS)
        )
    summary = {}
    for lvl in OPT_LEVELS:
        pred = [predicted[lvl][n] for n in names]
        meas = [measured[n] for n in names]
        summary[lvl] = (
            pearson(pred, meas),
            mean_absolute_error(pred, meas),
        )
    lines.append("")
    lines.append("{:<6} {:>8} {:>8}".format("level", "correl", "MAE"))
    for lvl, (corr, mae) in summary.items():
        lines.append(f"{lvl:<6} {corr:>8.3f} {mae:>8.2%}")
    all_pred = [predicted[l][n] for l in OPT_LEVELS for n in names]
    all_meas = [measured[n] for l in OPT_LEVELS for n in names]
    mean_err, std_err, within = error_band_summary(all_pred, all_meas)
    lines.append(
        f"error band over all {len(all_pred)} samples: mean={mean_err:.2%} "
        f"std={std_err:.2%} within-1-std={within:.0%}"
    )
    emit("fig5a_efficiency_correlation", "\n".join(lines))

    # Paper-shape assertions.
    for lvl in OPT_LEVELS:
        assert summary[lvl][0] > 0.9, (lvl, summary[lvl])
    assert summary["O1"][1] < 0.10          # O1 tracks hardware closely
    assert summary["O1"][1] <= summary["O3"][1] + 0.02
    # O3 overestimates on average (unrolling hides divergence).
    names_l = list(names)
    o3_bias = sum(
        predicted["O3"][n] - measured[n] for n in names_l
    ) / len(names_l)
    o1_bias = sum(
        predicted["O1"][n] - measured[n] for n in names_l
    ) / len(names_l)
    assert o3_bias >= o1_bias - 0.01
