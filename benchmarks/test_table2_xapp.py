"""Table II: XAPP vs ThreadFuser comparison.

* XAPP: leave-one-out ridge regression over 16 CPU-profile features,
  predicting the measured (CUDA-trace-simulated) speedup -- an opaque
  estimate with no mechanistic output.  Paper: 26.9% execution-time error.
* ThreadFuser: mechanistic pipeline whose *execution-time* prediction is
  the CPU-trace-driven simulation, compared against the CUDA-trace-driven
  simulation as "hardware".  Paper: 33% execution-time error but a 0.97
  speedup-projection correlation plus efficiency/memory/bottleneck
  reports XAPP cannot produce.
"""

import numpy as np

from conftest import emit, run_once

from repro.analysis import pearson
from repro.baselines import extract_features, leave_one_out_errors
from repro.cpusim import CPUSimulator, xeon_e5_2630
from repro.simulator import GPUSimulator, project_speedup, rtx3070
from repro.tracegen import generate_oracle_kernel_trace
from repro.workloads import correlation_workloads, trace_instance

N_THREADS = 96


def test_table2_xapp_vs_threadfuser(benchmark):
    def experiment():
        names, feats = [], []
        tf_seconds, cuda_seconds = [], []
        tf_speedup, cuda_speedup = [], []
        for workload in correlation_workloads():
            instance = workload.instantiate(N_THREADS)
            traces, _machine = trace_instance(instance)
            replicate = max(
                1, round(workload.paper_simt_threads / len(traces))
            )
            result = project_speedup(
                traces, instance.program,
                launch_threads=workload.paper_simt_threads,
            )
            kernel = generate_oracle_kernel_trace(
                instance.gpu.program, instance.gpu.kernel,
                instance.gpu.args_per_thread, instance.gpu.setup, 32,
            )
            gpu_stats = GPUSimulator(rtx3070()).run(kernel,
                                                    replicate=replicate)
            cuda_sec = gpu_stats.seconds(rtx3070().clock_ghz)
            cpu_sim = CPUSimulator(xeon_e5_2630())
            cpu_sec = (cpu_sim.run(traces, instance.program).cycles
                       * replicate / (cpu_sim.config.clock_ghz * 1e9))
            names.append(workload.name)
            feats.append(extract_features(traces, instance.program))
            tf_seconds.append(result.gpu_seconds)
            cuda_seconds.append(cuda_sec)
            tf_speedup.append(result.speedup)
            cuda_speedup.append(cpu_sec / cuda_sec)
        xapp_errors = leave_one_out_errors(feats, cuda_speedup, alpha=4.0)
        return (names, xapp_errors, tf_seconds, cuda_seconds, tf_speedup,
                cuda_speedup)

    (names, xapp_errors, tf_seconds, cuda_seconds, tf_speedup,
     cuda_speedup) = run_once(benchmark, experiment)

    tf_time_errors = [
        abs(t - c) / c for t, c in zip(tf_seconds, cuda_seconds)
    ]
    corr = pearson(tf_speedup, cuda_speedup)
    xapp_mean = float(np.mean(xapp_errors))
    tf_mean = float(np.mean(tf_time_errors))

    lines = [
        "Table II: XAPP vs ThreadFuser",
        "",
        "{:<16} {:>12} {:>14} {:>12} {:>12}".format(
            "workload", "XAPP err", "TF time err", "TF speedup",
            "CUDA speedup"),
    ]
    for i, name in enumerate(names):
        lines.append(
            f"{name:<16} {xapp_errors[i]:>12.1%} "
            f"{tf_time_errors[i]:>14.1%} {tf_speedup[i]:>12.2f} "
            f"{cuda_speedup[i]:>12.2f}"
        )
    lines += [
        "",
        f"XAPP mean execution-time error (LOO):        {xapp_mean:.1%}",
        f"ThreadFuser mean execution-time error:       {tf_mean:.1%}",
        f"ThreadFuser speedup-projection correlation:  {corr:.3f}",
        "",
        "capability comparison (qualitative, from the paper's Table II):",
        "  input:      XAPP = CPU code;    ThreadFuser = CPU MIMD traces",
        "  output:     XAPP = speedup only; ThreadFuser = SIMT efficiency,",
        "              memory divergence, cycle-level estimates,",
        "              source bottlenecks (per-function report)",
        "  hardware:   XAPP = existing GPUs only; ThreadFuser = any SIMT",
        "              machine via the trace-driven simulator",
    ]
    emit("table2_xapp", "\n".join(lines))

    # Paper shape: ThreadFuser's speedup projection correlates ~0.97;
    # both tools land in the same coarse error regime (tens of percent
    # for XAPP; ThreadFuser's mechanistic time error is competitive).
    assert corr > 0.9
    assert tf_mean < 0.5
    assert xapp_mean > tf_mean  # the ML model is the weaker predictor here
