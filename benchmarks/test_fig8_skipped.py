"""Figure 8: percentage distribution of traced vs skipped instructions.

The tracer skips I/O operations and lock spinning (and any explicitly
excluded functions).  The paper reports a ~90% GEOMEAN traced fraction
over the microservice workloads, concluding the remaining ~10% can be
safely skipped.
"""

from conftest import BENCH_THREADS, emit, run_once

from repro.analysis import geomean
from repro.workloads import all_workloads, trace_instance

MICROSERVICES = [
    "mcrouter_mid", "mcrouter_leaf", "memcached",
    "textsearch_mid", "textsearch_leaf",
    "hdsearch_mid", "hdsearch_leaf",
    "dsb_post", "dsb_text", "dsb_urlshort",
    "dsb_uniqueid", "dsb_usertag", "dsb_user",
]


def test_fig8_traced_vs_skipped(benchmark, traces_cache):
    def experiment():
        rows = {}
        for name in MICROSERVICES:
            _instance, traces = traces_cache.get(name)
            rows[name] = (
                traces.traced_fraction(),
                traces.skipped_by_reason(),
                traces.total_instructions,
            )
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Figure 8: traced (non-I/O) vs skipped (I/O + lock spinning) "
        f"instructions ({BENCH_THREADS} requests/service)",
        "{:<16} {:>9} {:>9} {:>9} {:>9}".format(
            "service", "traced%", "io", "spin", "other"),
    ]
    for name, (fraction, skipped, _total) in rows.items():
        io = skipped.get("io", 0)
        spin = skipped.get("spin", 0)
        other = sum(v for k, v in skipped.items()
                    if k not in ("io", "spin"))
        lines.append(
            f"{name:<16} {fraction:>9.1%} {io:>9} {spin:>9} {other:>9}"
        )
    gm = geomean([r[0] for r in rows.values()])
    lines.append(f"{'GEOMEAN':<16} {gm:>9.1%}")
    emit("fig8_skipped", "\n".join(lines))

    # Paper shape: ~90% of instructions traced; every service above 50%.
    assert 0.82 < gm < 0.99
    for name, (fraction, _s, _t) in rows.items():
        assert fraction > 0.5, name
