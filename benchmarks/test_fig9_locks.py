"""Figure 9: warp efficiency of the microservice workloads when
intra-warp lock serialization is emulated (warp size 32).

The paper finds that enabling lock emulation decreases efficiency, but
"not substantially", because these services handle independent requests
and use fine-grained locking.  The glibc-malloc-bound HDSearch midtier is
the exception that motivates the Sec. V-B discussion.
"""

from conftest import emit, run_once

from repro.analysis import geomean

MICROSERVICES = [
    "mcrouter_mid", "mcrouter_leaf", "memcached",
    "textsearch_mid", "textsearch_leaf",
    "hdsearch_leaf", "dsb_post", "dsb_text", "dsb_urlshort",
    "dsb_uniqueid", "dsb_usertag", "dsb_user",
]
WARP = 32


def test_fig9_intra_warp_locking(benchmark, traces_cache):
    def experiment():
        rows = {}
        for name in MICROSERVICES:
            off = traces_cache.report(name, WARP, emulate_locks=False)
            on = traces_cache.report(name, WARP, emulate_locks=True)
            rows[name] = (
                off.simt_efficiency,
                on.simt_efficiency,
                on.metrics.locks.lock_events,
                on.metrics.locks.contended_events,
                on.metrics.locks.serialized_threads,
            )
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Figure 9: warp efficiency with intra-warp lock emulation "
        "(warp size 32)",
        "{:<16} {:>9} {:>9} {:>7} {:>10} {:>11}".format(
            "service", "no-locks", "locks", "locks#", "contended#",
            "serialized#"),
    ]
    for name, (off, on, locks, contended, serialized) in rows.items():
        lines.append(
            f"{name:<16} {off:>9.1%} {on:>9.1%} {locks:>7} "
            f"{contended:>10} {serialized:>11}"
        )
    gm_off = geomean([r[0] for r in rows.values()])
    gm_on = geomean([r[1] for r in rows.values()])
    lines.append(f"{'GEOMEAN':<16} {gm_off:>9.1%} {gm_on:>9.1%}")
    lines.append(
        f"relative efficiency retained under lock emulation: "
        f"{gm_on / gm_off:.1%}"
    )
    emit("fig9_locks", "\n".join(lines))

    # Paper shape: a decline exists but is not substantial.
    assert gm_on <= gm_off + 1e-9
    assert gm_on / gm_off > 0.75
    for name, (off, on, *_rest) in rows.items():
        assert on <= off + 1e-9, name
