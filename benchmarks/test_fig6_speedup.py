"""Figure 6: projected GPU speedup of the MIMD workloads, normalized to
multithreaded CPU execution, with the CUDA-implementation series for the
correlation workloads.

Pipeline: ThreadFuser warp traces (and, where a CUDA twin exists,
nvbit-style oracle traces) -> RTX3070-configured GPU simulator; the same
MIMD traces -> 20-core Xeon CPU model.  Launches are upscaled to the
paper's "#SIMT Threads" sizes by warp replication (see DESIGN.md).

Expected shape: the ThreadFuser and CUDA series track each other closely
where both exist; convergent workloads project 15-20x; pigz-class
divergent workloads lose to the CPU.
"""

from conftest import emit, run_once

from repro.analysis import pearson
from repro.cpusim import CPUSimulator, xeon_e5_2630
from repro.simulator import GPUSimulator, project_speedup, rtx3070
from repro.tracegen import generate_oracle_kernel_trace
from repro.workloads import all_workloads, get_workload, trace_instance

N_THREADS = 96

#: Workloads plotted (correlation set first, then CPU-only ones).
WORKLOADS = [
    "vectoradd", "uncoalesced", "rodinia_bfs", "nn", "streamcluster",
    "btree", "particlefilter", "pp_bfs", "cc", "pagerank", "nbody",
    "textsearch_mid", "mcrouter_mid", "dsb_uniqueid", "memcached",
    "hdsearch_mid", "md5", "rotate", "pigz",
]


def _cuda_speedup(instance, workload, traces):
    """Speedup using nvbit-style traces of the CUDA implementation."""
    kernel = generate_oracle_kernel_trace(
        instance.gpu.program, instance.gpu.kernel,
        instance.gpu.args_per_thread, instance.gpu.setup, warp_size=32,
    )
    replicate = max(1, round(workload.paper_simt_threads / len(traces)))
    gpu_stats = GPUSimulator(rtx3070()).run(kernel, replicate=replicate)
    cpu_sim = CPUSimulator(xeon_e5_2630())
    cpu_stats = cpu_sim.run(traces, instance.program)
    cpu_seconds = (cpu_stats.cycles * replicate /
                   (cpu_sim.config.clock_ghz * 1e9))
    gpu_seconds = gpu_stats.seconds(rtx3070().clock_ghz)
    return cpu_seconds / gpu_seconds, gpu_seconds


def test_fig6_projected_speedup(benchmark):
    def experiment():
        rows = {}
        for name in WORKLOADS:
            workload = get_workload(name)
            n = N_THREADS if name != "pigz" else 48
            instance = workload.instantiate(n)
            traces, _machine = trace_instance(instance)
            result = project_speedup(
                traces, instance.program,
                launch_threads=workload.paper_simt_threads,
            )
            cuda = None
            if instance.gpu is not None:
                cuda = _cuda_speedup(instance, workload, traces)
            rows[name] = (result.simt_efficiency, result.speedup,
                          cuda[0] if cuda else None,
                          result.gpu_seconds,
                          cuda[1] if cuda else None)
        return rows

    rows = run_once(benchmark, experiment)

    lines = [
        "Figure 6: projected speedup vs 20-core CPU "
        "(RTX3070-configured simulator; launch = paper #SIMT threads)",
        "{:<18} {:>8} {:>12} {:>12}".format(
            "workload", "SIMTeff", "ThreadFuser", "CUDA-impl"),
    ]
    for name in WORKLOADS:
        eff, tf, cuda, _tfs, _cus = rows[name]
        cuda_txt = f"{cuda:12.2f}" if cuda is not None else f"{'-':>12}"
        lines.append(f"{name:<18} {eff:>8.1%} {tf:>12.2f} {cuda_txt}")
    both = [(r[1], r[2]) for r in rows.values() if r[2] is not None]
    corr = pearson([b[0] for b in both], [b[1] for b in both])
    lines.append(f"\nThreadFuser-vs-CUDA speedup correlation: {corr:.3f} "
                 f"({len(both)} workloads)")
    winners = [n for n in WORKLOADS if rows[n][1] > 10]
    lines.append(f"workloads above 10x: {', '.join(winners)}")
    emit("fig6_speedup", "\n".join(lines))

    # Paper-shape assertions.
    assert corr > 0.9                       # paper: 0.97 correlation
    assert rows["pigz"][1] < 1.0            # pigz loses on a GPU
    assert rows["textsearch_mid"][1] > 10   # convergent services win big
    assert rows["nbody"][1] > 5
    assert rows["dsb_uniqueid"][1] > 10
    # The two series track each other: median relative gap is small.
    gaps = sorted(abs(a - b) / max(b, 1e-9) for a, b in both)
    assert gaps[len(gaps) // 2] < 0.5
